"""Experiment configuration (the knobs of Sec. 5.1, plus engine options)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exec import BACKENDS
from repro.network.transport import CONTENTION_MODES
from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "ExperimentConfig",
    "ALGORITHMS",
    "BACKENDS",
    "MODES",
    "LATE_POLICIES",
    "EDGE_ASSIGNMENTS",
    "EDGE_SYNC_MODES",
    "CONTENTION_MODES",
    "ADVERSARIES",
    "AGGREGATORS",
]

#: Algorithms of Table 2 (the baselines and the paper's two methods) plus
#: the deadline-drop straggler policy used as an extra ablation baseline.
ALGORITHMS = ("fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa", "deadline_topk")

#: Round protocols: lock-step sync, deadline-based semi-sync, FedBuff-style
#: fully-async buffered aggregation (repro.simtime), and hierarchical
#: cloud–edge–client federation (repro.hier).
MODES = ("sync", "semisync", "async", "hier")

#: What a semi-sync round does with updates that miss its deadline.
LATE_POLICIES = ("carryover", "drop")

#: How clients are placed under edge aggregators (repro.hier).
EDGE_ASSIGNMENTS = ("contiguous", "random", "bandwidth")

#: Edge sub-round barrier semantics: lock-step, or deadline-drop.
EDGE_SYNC_MODES = ("sync", "semisync")

# CONTENTION_MODES ("none" | "fair") is defined by repro.network.transport —
# the transport layer owns the contention vocabulary — and re-exported here
# for config consumers.

#: Byzantine client behaviors (repro.robust.attacks). sign_flip and scaled
#: corrupt the trained delta; label_flip poisons the client's shard at
#: hydration so virtual fleets stay O(active cohort).
ADVERSARIES = ("sign_flip", "scaled", "label_flip")

#: Server-side aggregation rules (repro.robust.aggregators). "mean" is the
#: paper's weighted mean; the rest trade exactness for breakdown resistance.
AGGREGATORS = ("mean", "median", "trimmed_mean", "norm_clip")


@dataclass(frozen=True)
class ExperimentConfig:
    """Full specification of one FL run.

    Defaults follow the paper's federated setting (Sec. 5.1): N=10 clients,
    participation C=0.5, batch size 64, E=1 local epoch, Dirichlet β, with
    the synthetic datasets and scaled-down models of DESIGN.md §2.
    """

    # Task
    dataset: str = "synth-cifar10"
    model: str = "mlp"
    num_train: int = 2000
    num_test: int = 500

    # Federation (Sec. 5.1)
    num_clients: int = 10
    participation: float = 0.5  # C: fraction selected per round
    beta: float = 0.5  # Dirichlet heterogeneity (lower = more severe)
    rounds: int = 200
    local_epochs: int = 1  # E
    batch_size: int = 64

    # Local optimizer (η)
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    proximal_mu: float = 0.0  # FedProx proximal term μ·||w − w_t||²/2 (0 = off)
    local_optimizer: str = "sgd"  # "sgd" | "adam"

    # Algorithm under test
    algorithm: str = "fedavg"
    compressor: str | None = None  # registry name overriding the algorithm's
    #   default client compressor (e.g. "qsgd8" for 8-bit quantized uplinks);
    #   None = the algorithm's own choice. Requires a compressing algorithm.
    compression_ratio: float = 1.0  # CR* (retained fraction; 1.0 = dense)
    alpha: float = 0.3  # server learning rate in Eq. 6
    gamma: float = 5.0  # OPWA enlarge rate γ
    required_overlap: int = 1  # OPWA threshold D
    norm_mode: str = "sum"  # Eq. 6 Norm() variant
    benchmark: str = "max"  # BCRS benchmark rule
    server_step: float = 1.0  # η_s in Alg. 1 lines 14/16/18 (server-opt LR)
    server_optimizer: str = "sgd"  # FedOpt family: "sgd" (FedAvg/FedAvgM) | "adam" (FedAdam)
    server_momentum: float = 0.0  # FedAvgM momentum (server_optimizer="sgd")
    deadline_quantile: float = 0.5  # deadline_topk: round ends at this time quantile

    # Fleet-scale population (repro.population). virtual_shards switches the
    # client-data regime from "partition the corpus" to "each client's shard
    # is a procedural, counter-seeded draw from the shared corpus" — the
    # regime that lets num_clients dwarf num_train and the population table
    # construct in milliseconds at a million clients.
    virtual_shards: bool = False
    virtual_shard_min: int = 16  # virtual regime: smallest client shard
    virtual_shard_max: int = 64  # virtual regime: largest client shard
    hydration_cache: int | None = None  # LRU capacity for hydrated Client
    #   objects (None = cohort size, clamped to the pool's default bounds)

    # Environment
    partition: str = "dirichlet"  # dirichlet | iid | shard
    volume_override_bits: float | None = None  # simulate a paper-scale model volume
    include_downlink: bool = False  # add broadcast (downlink) time to round metrics
    downlink_factor: float = 10.0  # downlink bandwidth = factor × uplink (Sec. 3.3)
    time_varying_links: bool = False
    link_volatility: float = 0.1
    seed: int = 0
    eval_every: int = 1  # evaluate test accuracy every k rounds

    # Execution engine (repro.exec): how the round's client work runs.
    backend: str = "serial"  # "serial" | "thread" | "process"
    workers: int | None = None  # parallel worker count (None = auto)

    # Virtual-clock protocol (repro.simtime): when client work *lands*.
    mode: str = "sync"  # "sync" | "semisync" | "async"
    buffer_size: int | None = None  # async: aggregate every K arrivals (None = ⌈M/2⌉)
    concurrency: int | None = None  # async: in-flight clients M (None = clients_per_round)
    staleness_exponent: float = 0.5  # async/carryover weight = (1+s)^-a (FedBuff a=1/2)
    deadline_s: float | None = None  # semisync: fixed round deadline (None = per-round
    #   deadline_quantile over the selected clients' predicted finish times)
    late_policy: str = "carryover"  # semisync: late updates "carryover" | "drop"

    # Device compute heterogeneity (repro.simtime.profiles).
    compute_s_per_sample: float = 5e-3  # median local-training cost (s per sample×epoch)
    compute_heterogeneity: float = 0.5  # lognormal sigma of per-client speed (0 = uniform)

    # Transport (repro.network.transport): how concurrent uploads share the
    # aggregation point's ingress. "none" = exclusive links (the paper's
    # Eq. 4 per-link pricing, the bit-for-bit seed semantics); "fair" =
    # server_ingress_mbps max-min fair-shared among in-flight uploads
    # (per edge aggregator under mode="hier"; edge→cloud backhaul then
    # contends on the cloud's own ingress).
    contention: str = "none"
    server_ingress_mbps: float | None = None  # required when contention="fair"

    # Hierarchy (repro.hier, mode="hier"): cloud → edge → client federation.
    # The defaults (one edge, free backhaul, one sub-round) make the
    # hierarchical protocol reproduce the flat Simulation bit-for-bit.
    num_edges: int = 1  # E edge aggregators between cloud and clients
    edge_assignment: str = "contiguous"  # how clients map to edges
    edge_rounds: int = 1  # K₁ client↔edge sub-rounds per cloud round
    edge_sync: str = "sync"  # edge sub-round barrier: lock-step | deadline-drop
    #   (semisync edges honor deadline_s/deadline_quantile; late updates
    #   always drop — lock-step sub-rounds have no window to carry into)
    backhaul_bandwidth_mbps: float | None = None  # median edge↔cloud bandwidth (None = free)
    backhaul_latency_s: float = 0.0  # median edge↔cloud latency
    backhaul_heterogeneity: float = 0.0  # lognormal sigma of per-edge backhaul draws

    # Adversarial robustness (repro.robust). adversary=None with zero fault
    # probabilities and aggregator="mean" is the exact honest-path contract:
    # no extra RNG draws, bit-identical histories with every prior PR.
    adversary: str | None = None  # byzantine behavior, one of ADVERSARIES
    adversary_fraction: float = 0.0  # expected fraction of adversarial clients
    adversary_scale: float = 10.0  # λ for adversary="scaled" (delta ×= λ)
    aggregator: str = "mean"  # server aggregation rule, one of AGGREGATORS
    trim_beta: float = 0.1  # trimmed_mean: trim ⌊β·n⌋ per tail (β < 0.5)
    clip_tau: float | None = None  # norm_clip: L2 radius (required by that aggregator)
    drop_prob: float = 0.0  # per-upload probability the payload is lost in flight
    truncate_prob: float = 0.0  # per-upload probability the payload arrives truncated
    edge_crash_prob: float = 0.0  # hier: per-(round, edge) aggregator crash probability

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}")
        check_fraction("participation", self.participation)
        check_fraction("compression_ratio", self.compression_ratio)
        if self.compressor is not None:
            from repro.compression.registry import available_compressors

            names = available_compressors()
            if self.compressor not in names:
                raise ValueError(
                    f"compressor must be one of {names}, got {self.compressor!r}"
                )
            if self.algorithm == "fedavg":
                raise ValueError(
                    "compressor override requires a compressing algorithm "
                    "(fedavg uploads dense by definition); pick e.g. 'topk'"
                )
        check_positive("beta", self.beta)
        check_positive("lr", self.lr)
        check_positive("alpha", self.alpha)
        check_positive("gamma", self.gamma)
        for name in ("num_clients", "rounds", "local_epochs", "batch_size", "num_train", "num_test", "eval_every"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.partition not in ("dirichlet", "iid", "shard"):
            raise ValueError(f"unknown partition {self.partition!r}")
        for name in ("virtual_shard_min", "virtual_shard_max"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.virtual_shard_max < self.virtual_shard_min:
            raise ValueError(
                f"virtual_shard_max must be >= virtual_shard_min, got "
                f"{self.virtual_shard_max} < {self.virtual_shard_min}"
            )
        if self.hydration_cache is not None and self.hydration_cache < 1:
            raise ValueError(f"hydration_cache must be >= 1, got {self.hydration_cache}")
        if self.virtual_shards and self.time_varying_links:
            raise ValueError(
                "time_varying_links requires the partitioned regime: per-link "
                "drift state is O(fleet), which the virtual-shard regime "
                "exists to avoid"
            )
        if self.volume_override_bits is not None and self.volume_override_bits <= 0:
            raise ValueError(
                f"volume_override_bits must be > 0, got {self.volume_override_bits}"
            )
        if self.proximal_mu < 0:
            raise ValueError(f"proximal_mu must be >= 0, got {self.proximal_mu}")
        if self.local_optimizer not in ("sgd", "adam"):
            raise ValueError(
                f"local_optimizer must be 'sgd' or 'adam', got {self.local_optimizer!r}"
            )
        if self.server_optimizer not in ("sgd", "adam"):
            raise ValueError(
                f"server_optimizer must be 'sgd' or 'adam', got {self.server_optimizer!r}"
            )
        if not 0 <= self.server_momentum < 1:
            raise ValueError(f"server_momentum must be in [0, 1), got {self.server_momentum}")
        check_positive("downlink_factor", self.downlink_factor)
        check_fraction("deadline_quantile", self.deadline_quantile)
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.late_policy not in LATE_POLICIES:
            raise ValueError(
                f"late_policy must be one of {LATE_POLICIES}, got {self.late_policy!r}"
            )
        if self.buffer_size is not None and self.buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {self.buffer_size}")
        if self.concurrency is not None and not 1 <= self.concurrency <= self.num_clients:
            raise ValueError(
                f"concurrency must be in [1, num_clients={self.num_clients}], "
                f"got {self.concurrency}"
            )
        if self.staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be >= 0, got {self.staleness_exponent}"
            )
        if self.deadline_s is not None:
            check_positive("deadline_s", self.deadline_s)
        check_positive("compute_s_per_sample", self.compute_s_per_sample)
        check_positive("compute_heterogeneity", self.compute_heterogeneity, strict=False)
        if self.contention not in CONTENTION_MODES:
            raise ValueError(
                f"contention must be one of {CONTENTION_MODES}, got {self.contention!r}"
            )
        if self.server_ingress_mbps is not None:
            check_positive("server_ingress_mbps", self.server_ingress_mbps)
        if self.contention == "fair" and self.server_ingress_mbps is None:
            raise ValueError(
                "contention='fair' needs server_ingress_mbps (the shared "
                "ingress capacity to fair-share)"
            )
        if not 1 <= self.num_edges <= self.num_clients:
            raise ValueError(
                f"num_edges must be in [1, num_clients={self.num_clients}], "
                f"got {self.num_edges}"
            )
        if self.edge_assignment not in EDGE_ASSIGNMENTS:
            raise ValueError(
                f"edge_assignment must be one of {EDGE_ASSIGNMENTS}, "
                f"got {self.edge_assignment!r}"
            )
        if self.edge_rounds < 1:
            raise ValueError(f"edge_rounds must be >= 1, got {self.edge_rounds}")
        if self.edge_sync not in EDGE_SYNC_MODES:
            raise ValueError(
                f"edge_sync must be one of {EDGE_SYNC_MODES}, got {self.edge_sync!r}"
            )
        if self.backhaul_bandwidth_mbps is not None:
            check_positive("backhaul_bandwidth_mbps", self.backhaul_bandwidth_mbps)
        check_positive("backhaul_latency_s", self.backhaul_latency_s, strict=False)
        check_positive("backhaul_heterogeneity", self.backhaul_heterogeneity, strict=False)
        if self.adversary is not None and self.adversary not in ADVERSARIES:
            raise ValueError(
                f"adversary must be one of {ADVERSARIES}, got {self.adversary!r}"
            )
        check_positive("adversary_scale", self.adversary_scale)
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"aggregator must be one of {AGGREGATORS}, got {self.aggregator!r}"
            )
        if not 0 <= self.trim_beta < 0.5:
            raise ValueError(f"trim_beta must be in [0, 0.5), got {self.trim_beta}")
        if self.clip_tau is not None:
            check_positive("clip_tau", self.clip_tau)
        if self.aggregator == "norm_clip" and self.clip_tau is None:
            raise ValueError("aggregator='norm_clip' needs clip_tau (the L2 clip radius)")
        for name, prob in (
            ("adversary_fraction", self.adversary_fraction),
            ("drop_prob", self.drop_prob),
            ("truncate_prob", self.truncate_prob),
            ("edge_crash_prob", self.edge_crash_prob),
        ):
            # Probabilities, not fractions: 0 (the honest default) is legal.
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {prob}")
        if self.drop_prob + self.truncate_prob > 1.0:
            raise ValueError(
                "drop_prob + truncate_prob must be <= 1, got "
                f"{self.drop_prob} + {self.truncate_prob}"
            )

    @property
    def clients_per_round(self) -> int:
        """|S_t| = max(1, round(N·C))."""
        return max(1, int(round(self.num_clients * self.participation)))

    @property
    def async_concurrency(self) -> int:
        """Async mode's in-flight client count M (default: |S_t|)."""
        return self.clients_per_round if self.concurrency is None else self.concurrency

    @property
    def async_buffer_size(self) -> int:
        """Async mode's aggregation buffer K (default: ⌈M/2⌉).

        Every arrival re-dispatches a client, so any K >= 1 makes progress;
        K larger than the concurrency M just means some buffered updates
        span several dispatch generations.
        """
        return -(-self.async_concurrency // 2) if self.buffer_size is None else self.buffer_size

    def with_(self, **overrides) -> "ExperimentConfig":
        """Functional update (configs are frozen)."""
        return replace(self, **overrides)
