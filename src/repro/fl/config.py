"""Experiment configuration (the knobs of Sec. 5.1, plus engine options)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exec import BACKENDS
from repro.utils.validation import check_fraction, check_positive

__all__ = ["ExperimentConfig", "ALGORITHMS", "BACKENDS"]

#: Algorithms of Table 2 (the baselines and the paper's two methods) plus
#: the deadline-drop straggler policy used as an extra ablation baseline.
ALGORITHMS = ("fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa", "deadline_topk")


@dataclass(frozen=True)
class ExperimentConfig:
    """Full specification of one FL run.

    Defaults follow the paper's federated setting (Sec. 5.1): N=10 clients,
    participation C=0.5, batch size 64, E=1 local epoch, Dirichlet β, with
    the synthetic datasets and scaled-down models of DESIGN.md §2.
    """

    # Task
    dataset: str = "synth-cifar10"
    model: str = "mlp"
    num_train: int = 2000
    num_test: int = 500

    # Federation (Sec. 5.1)
    num_clients: int = 10
    participation: float = 0.5  # C: fraction selected per round
    beta: float = 0.5  # Dirichlet heterogeneity (lower = more severe)
    rounds: int = 200
    local_epochs: int = 1  # E
    batch_size: int = 64

    # Local optimizer (η)
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    proximal_mu: float = 0.0  # FedProx proximal term μ·||w − w_t||²/2 (0 = off)
    local_optimizer: str = "sgd"  # "sgd" | "adam"

    # Algorithm under test
    algorithm: str = "fedavg"
    compression_ratio: float = 1.0  # CR* (retained fraction; 1.0 = dense)
    alpha: float = 0.3  # server learning rate in Eq. 6
    gamma: float = 5.0  # OPWA enlarge rate γ
    required_overlap: int = 1  # OPWA threshold D
    norm_mode: str = "sum"  # Eq. 6 Norm() variant
    benchmark: str = "max"  # BCRS benchmark rule
    server_step: float = 1.0  # η_s in Alg. 1 lines 14/16/18 (server-opt LR)
    server_optimizer: str = "sgd"  # FedOpt family: "sgd" (FedAvg/FedAvgM) | "adam" (FedAdam)
    server_momentum: float = 0.0  # FedAvgM momentum (server_optimizer="sgd")
    deadline_quantile: float = 0.5  # deadline_topk: round ends at this time quantile

    # Environment
    partition: str = "dirichlet"  # dirichlet | iid | shard
    volume_override_bits: float | None = None  # simulate a paper-scale model volume
    include_downlink: bool = False  # add broadcast (downlink) time to round metrics
    downlink_factor: float = 10.0  # downlink bandwidth = factor × uplink (Sec. 3.3)
    time_varying_links: bool = False
    link_volatility: float = 0.1
    seed: int = 0
    eval_every: int = 1  # evaluate test accuracy every k rounds

    # Execution engine (repro.exec): how the round's client work runs.
    backend: str = "serial"  # "serial" | "thread" | "process"
    workers: int | None = None  # parallel worker count (None = auto)

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}")
        check_fraction("participation", self.participation)
        check_fraction("compression_ratio", self.compression_ratio)
        check_positive("beta", self.beta)
        check_positive("lr", self.lr)
        check_positive("alpha", self.alpha)
        check_positive("gamma", self.gamma)
        for name in ("num_clients", "rounds", "local_epochs", "batch_size", "num_train", "num_test", "eval_every"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.partition not in ("dirichlet", "iid", "shard"):
            raise ValueError(f"unknown partition {self.partition!r}")
        if self.volume_override_bits is not None and self.volume_override_bits <= 0:
            raise ValueError(
                f"volume_override_bits must be > 0, got {self.volume_override_bits}"
            )
        if self.proximal_mu < 0:
            raise ValueError(f"proximal_mu must be >= 0, got {self.proximal_mu}")
        if self.local_optimizer not in ("sgd", "adam"):
            raise ValueError(
                f"local_optimizer must be 'sgd' or 'adam', got {self.local_optimizer!r}"
            )
        if self.server_optimizer not in ("sgd", "adam"):
            raise ValueError(
                f"server_optimizer must be 'sgd' or 'adam', got {self.server_optimizer!r}"
            )
        if not 0 <= self.server_momentum < 1:
            raise ValueError(f"server_momentum must be in [0, 1), got {self.server_momentum}")
        check_positive("downlink_factor", self.downlink_factor)
        check_fraction("deadline_quantile", self.deadline_quantile)
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def clients_per_round(self) -> int:
        """|S_t| = max(1, round(N·C))."""
        return max(1, int(round(self.num_clients * self.participation)))

    def with_(self, **overrides) -> "ExperimentConfig":
        """Functional update (configs are frozen)."""
        return replace(self, **overrides)
