"""Cross-cell world caching: build a config's dataset/partition/fleet once.

A sweep over optimizer or compression axes re-runs
:class:`~repro.fl.simulation.Simulation` construction for every cell, and
most of that construction — raw dataset arrays, the train/test split, the
client partition, the :class:`~repro.population.table.Population` column
table — depends only on a small slice of the config. This module names that
slice (:data:`DATASET_KEY_FIELDS`), packages its products as an immutable
:class:`SimulationContext`, and caches contexts in a :class:`WorldCache` so
every cell sharing the key reuses the same arrays.

Correctness rests on two properties:

- **stream independence** — the construction consumes the ``RngFactory``
  named streams ``"partition"``, ``"links"``, ``"compute"`` and
  ``"shard-sizes"``, each an independent child of the config seed, so
  building them inside a context (before any simulation exists) draws
  exactly the values :class:`Simulation.__init__` would have drawn in
  place. Seeded histories are bit-identical with or without a context
  (``tests/fl/test_context.py`` pins this).
- **column immutability** — the only population columns a running
  simulation ever writes (``available``, ``edge_of``) are freshly allocated
  per :meth:`SimulationContext.make_population` call; the shared columns
  are additionally frozen (``writeable=False``) so an accidental write
  raises instead of corrupting sibling cells.

Keying is deliberately conservative: every field that *could* influence the
products is in the key, so two configs differing in any non-IID knob
(``partition``, ``beta``, shard bounds, compute heterogeneity, seed, …)
never share a table — even where sharing would happen to be safe (e.g.
``beta`` under an IID partition).

The cache is **process-local**. The sweep's forked process workers each
hold their own instance (:data:`repro.scenarios.sweep` keeps one at module
level), which is what turns a 100-cell grid from 100 dataset constructions
into one per worker per key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.data.datasets import DATASET_SPECS, train_test_split
from repro.data.partition import (
    Partition,
    dirichlet_partition,
    iid_partition,
    shard_partition,
)
from repro.population.table import Population
from repro.utils.rng import RngFactory

__all__ = ["DATASET_KEY_FIELDS", "dataset_key", "SimulationContext", "WorldCache"]

#: The config fields the cached products are a pure function of. Everything
#: else (algorithm, compressor, ratios, server optimizer, protocol mode,
#: transport, backend, …) may vary freely across cells sharing one context.
DATASET_KEY_FIELDS = (
    "dataset",
    "num_train",
    "num_test",
    "num_clients",
    "seed",
    "partition",
    "beta",
    "virtual_shards",
    "virtual_shard_min",
    "virtual_shard_max",
    "compute_s_per_sample",
    "compute_heterogeneity",
)


def dataset_key(config) -> tuple:
    """The world-cache key: the dataset-relevant slice of ``config``."""
    return tuple(getattr(config, name) for name in DATASET_KEY_FIELDS)


def _build_partition(config, rngs: RngFactory) -> Partition | None:
    """The client partition exactly as ``Simulation.__init__`` draws it."""
    if config.virtual_shards:
        return None
    train_set, _ = _split(config)
    if config.partition == "dirichlet":
        return dirichlet_partition(
            train_set.y, config.num_clients, config.beta, seed=rngs.stream("partition")
        )
    if config.partition == "iid":
        return iid_partition(
            train_set.y, config.num_clients, seed=rngs.stream("partition")
        )
    return shard_partition(
        train_set.y, config.num_clients, seed=rngs.stream("partition")
    )


def _split(config):
    spec = DATASET_SPECS[config.dataset]
    return train_test_split(
        spec, config.num_train, config.num_test, seed=config.seed
    )


@dataclass(frozen=True)
class SimulationContext:
    """The cached, immutable products of one dataset key.

    ``template`` is a fully-built :class:`Population` whose columns
    :meth:`make_population` shares into per-simulation instances; the
    template itself is never handed to a simulation.
    """

    key: tuple
    train_set: object
    test_set: object
    partition: Partition | None
    template: Population

    @classmethod
    def build(cls, config) -> "SimulationContext":
        """Construct the world for ``config``'s dataset key.

        Draws the same named RNG streams, in the same way, as a cold
        :class:`~repro.fl.simulation.Simulation` — stream independence makes
        the order of construction irrelevant, so the arrays are bit-equal.
        """
        rngs = RngFactory(config.seed)
        train_set, test_set = _split(config)
        partition = _build_partition(config, rngs)
        template = Population.from_config(config, partition=partition)
        # Freeze the shared columns: a write from any consumer would leak
        # state between cells — fail loudly instead. (``available`` and
        # ``edge_of`` are per-instance and stay writable.)
        for col in (
            template.bandwidth_bps,
            template.latency_s,
            template.s_per_sample,
            template.data_sizes,
        ):
            col.flags.writeable = False
        return cls(
            key=dataset_key(config),
            train_set=train_set,
            test_set=test_set,
            partition=partition,
            template=template,
        )

    def check(self, config) -> None:
        """Refuse configs whose dataset key this context was not built for."""
        key = dataset_key(config)
        if key != self.key:
            raise ValueError(
                f"context built for dataset key {self.key} cannot serve a "
                f"config with key {key}"
            )

    def make_population(self) -> Population:
        """A fresh :class:`Population` sharing the immutable columns.

        ``available`` and ``edge_of`` — the only columns simulations mutate
        (availability churn, hierarchy binding) — are freshly allocated by
        ``Population.__post_init__``, so sibling cells never observe each
        other's round state.
        """
        t = self.template
        return Population(
            seed=t.seed,
            bandwidth_bps=t.bandwidth_bps,
            latency_s=t.latency_s,
            s_per_sample=t.s_per_sample,
            data_sizes=t.data_sizes,
            compute_overhead_s=t.compute_overhead_s,
            partition=t.partition,
            corpus_size=t.corpus_size,
        )

    def nbytes(self) -> int:
        """Approximate cached bytes (dataset arrays + columns)."""
        total = self.template.memory_bytes()
        for ds in (self.train_set, self.test_set):
            for name in ("x", "y"):
                arr = getattr(ds, name, None)
                if arr is not None:
                    total += int(arr.nbytes)
        return total


class WorldCache:
    """Thread-safe LRU of :class:`SimulationContext` by dataset key.

    ``max_entries`` bounds resident worlds (a synthetic-CIFAR world is a few
    MB; sweeps rarely span more than a handful of dataset keys at once).
    Eviction only drops the cache's reference — a simulation still running
    on an evicted context keeps it alive.
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, SimulationContext] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, config) -> SimulationContext:
        """The context for ``config``'s dataset key, building on first use."""
        key = dataset_key(config)
        with self._lock:
            ctx = self._entries.get(key)
            if ctx is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return ctx
            self.misses += 1
        # Build outside the lock (construction is the expensive part); a
        # concurrent builder of the same key wastes one build, nothing more.
        ctx = SimulationContext.build(config)
        with self._lock:
            self._entries[key] = ctx
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return ctx

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Cache accounting: hits/misses/evictions/resident entries."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "resident": len(self._entries),
                "max_entries": self.max_entries,
            }
