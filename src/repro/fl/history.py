"""Per-round records and the run history (curves for every paper figure)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.metrics import RoundTimes, TimeAccumulator

__all__ = ["RoundComm", "EdgeRecord", "RoundRecord", "History"]


@dataclass(frozen=True)
class RoundComm:
    """Byte-accurate flow ledger of one round (or aggregation window).

    Each field is a sorted tuple of ``(endpoint id, bits)`` pairs recording
    exact wire volumes the transport priced this round: ``uplink`` and
    ``downlink`` key by client id (downlink entries appear only when
    downlink accounting is on — the ledger records *priced* flows);
    ``backhaul`` keys by edge id with both edge↔cloud directions summed
    (empty on flat protocols and free backhauls).
    """

    uplink: tuple[tuple[int, float], ...] = ()
    downlink: tuple[tuple[int, float], ...] = ()
    backhaul: tuple[tuple[int, float], ...] = ()

    @staticmethod
    def from_maps(
        uplink: dict[int, float] | None = None,
        downlink: dict[int, float] | None = None,
        backhaul: dict[int, float] | None = None,
    ) -> "RoundComm":
        """Build a ledger from id→bits accumulators, dropping zero entries."""

        def items(m):
            if not m:
                return ()
            return tuple(sorted((int(k), float(v)) for k, v in m.items() if v > 0))

        return RoundComm(
            uplink=items(uplink), downlink=items(downlink), backhaul=items(backhaul)
        )

    @property
    def uplink_bits(self) -> float:
        return sum(b for _, b in self.uplink)

    @property
    def downlink_bits(self) -> float:
        return sum(b for _, b in self.downlink)

    @property
    def backhaul_bits(self) -> float:
        return sum(b for _, b in self.backhaul)

    @property
    def total_bits(self) -> float:
        return self.uplink_bits + self.downlink_bits + self.backhaul_bits

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


@dataclass(frozen=True)
class EdgeRecord:
    """One edge aggregator's share of a hierarchical cloud round.

    ``sub_spans`` are the virtual durations of the edge's K₁ client↔edge
    sub-rounds; ``backhaul_s`` is the edge↔cloud transfer time (upload plus,
    when downlink accounting is on, the cloud→edge broadcast). The edge
    occupied ``[start, end]`` on the virtual clock, ``end`` including the
    backhaul upload.
    """

    edge: int
    selected: tuple[int, ...]  # clients sampled across the edge's sub-rounds
    sub_spans: tuple[float, ...]  # virtual duration of each sub-round
    backhaul_s: float
    start: float
    end: float


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured in one communication round (or, in async mode,
    one buffered aggregation)."""

    round_index: int
    selected: tuple[int, ...]
    train_loss: float
    test_accuracy: float | None  # None on rounds without evaluation
    times: RoundTimes
    ratios: tuple[float, ...]  # realized per-client compression ratios
    weights: tuple[float, ...]  # averaging coefficients used
    singleton_fraction: float | None  # OPWA diagnostics (None when dense)
    train_seconds: float  # wall-clock local training time (Fig. 6)
    compress_seconds: float  # wall-clock compress+decompress time (Fig. 6)
    # Virtual-clock span (repro.simtime): the round/aggregation occupied
    # [sim_start, sim_end] on the scheduler's clock — download + compute +
    # upload, unlike ``times`` which prices communication only. None on
    # histories from before the scheduler existed (e.g. old JSON files).
    sim_start: float | None = None
    sim_end: float | None = None
    mean_staleness: float | None = None  # async/carryover: mean model-version lag
    # Hierarchical rounds (repro.hier): per-edge tier timings. None on flat
    # protocols and on histories persisted before the hierarchy existed.
    edge_breakdown: tuple[EdgeRecord, ...] | None = None
    # Transport flow ledger (repro.network.transport): exact bits moved per
    # client/tier this round. None on histories from before the unified
    # transport layer existed.
    comm: RoundComm | None = None
    # Uploads that actually reached the aggregator (repro.robust / fault
    # injection): len(selected) minus drops and unusable truncations; 0 on a
    # well-defined empty round (model unchanged). None on fault-free runs
    # and on histories persisted before fault injection existed — there,
    # every selected client participated.
    num_participants: int | None = None


@dataclass
class History:
    """Accumulated run record: what every table/figure is computed from."""

    records: list[RoundRecord] = field(default_factory=list)
    time: TimeAccumulator = field(default_factory=TimeAccumulator)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)
        self.time.update(record.times)

    def __len__(self) -> int:
        return len(self.records)

    # ---- series accessors -------------------------------------------------

    def accuracy_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(round indexes, test accuracies) at evaluated rounds — Fig. 7–9/13–15."""
        pts = [(r.round_index, r.test_accuracy) for r in self.records if r.test_accuracy is not None]
        if not pts:
            return np.empty(0, int), np.empty(0)
        rounds, accs = zip(*pts)
        return np.asarray(rounds), np.asarray(accs)

    def accuracy_vs_time(self) -> tuple[np.ndarray, np.ndarray]:
        """(cumulative actual comm time, accuracy) at evaluated rounds — Fig. 10."""
        cum = self.time.actual_series
        pts = [
            (cum[i], r.test_accuracy)
            for i, r in enumerate(self.records)
            if r.test_accuracy is not None
        ]
        if not pts:
            return np.empty(0), np.empty(0)
        t, accs = zip(*pts)
        return np.asarray(t), np.asarray(accs)

    def accuracy_vs_simtime(self) -> tuple[np.ndarray, np.ndarray]:
        """(virtual-clock time, accuracy) at evaluated rounds.

        The native time axis for cross-mode (sync / semisync / async)
        comparison: every record's ``sim_end`` timestamps when its model
        became available, pricing download + compute + upload. Falls back
        to :meth:`accuracy_vs_time` for histories without sim spans.
        """
        if any(r.sim_end is None for r in self.records):
            return self.accuracy_vs_time()
        pts = [
            (r.sim_end, r.test_accuracy)
            for r in self.records
            if r.test_accuracy is not None
        ]
        if not pts:
            return np.empty(0), np.empty(0)
        t, accs = zip(*pts)
        return np.asarray(t), np.asarray(accs)

    def simtime_to_accuracy(self, target: float) -> float | None:
        """Virtual-clock time when ``target`` accuracy is first reached
        (None if never) — the cross-mode time-to-accuracy extraction."""
        t, accs = self.accuracy_vs_simtime()
        for ti, ai in zip(t, accs):
            if ai >= target:
                return float(ti)
        return None

    def final_accuracy(self) -> float:
        """Last evaluated test accuracy — the Table 2 number."""
        _, accs = self.accuracy_series()
        if accs.size == 0:
            raise ValueError("no evaluations recorded")
        return float(accs[-1])

    def best_accuracy(self) -> float:
        """Best evaluated test accuracy over the run."""
        _, accs = self.accuracy_series()
        if accs.size == 0:
            raise ValueError("no evaluations recorded")
        return float(accs.max())

    # ---- Table 3: time to target accuracy ----------------------------------

    def time_to_accuracy(self, target: float) -> dict[str, float | None]:
        """Accumulated Actual/Max/Min communication time when ``target`` is
        first reached (None if never) — the Table 3 extraction."""
        actual = maximum = minimum = 0.0
        for r in self.records:
            actual += r.times.actual
            maximum += r.times.maximum
            minimum += r.times.minimum
            if r.test_accuracy is not None and r.test_accuracy >= target:
                return {"actual": actual, "max": maximum, "min": minimum}
        return {"actual": None, "max": None, "min": None}

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round index reaching ``target`` accuracy (None if never)."""
        for r in self.records:
            if r.test_accuracy is not None and r.test_accuracy >= target:
                return r.round_index
        return None

    # ---- transport flow accounting -----------------------------------------

    def comm_totals(self) -> dict[str, float]:
        """Accumulated wire bytes per direction over rounds with ledgers.

        ``rounds`` counts the records carrying a flow ledger (0 on legacy
        histories, where every byte field is 0 too).
        """
        up = down = back = 0.0
        n = 0
        for r in self.records:
            if r.comm is None:
                continue
            n += 1
            up += r.comm.uplink_bits
            down += r.comm.downlink_bits
            back += r.comm.backhaul_bits
        return {
            "uplink_bytes": up / 8.0,
            "downlink_bytes": down / 8.0,
            "backhaul_bytes": back / 8.0,
            "total_bytes": (up + down + back) / 8.0,
            "rounds": float(n),
        }

    def comm_per_client(self) -> dict[int, float]:
        """Accumulated *uplink* bytes per client id — the egress each device
        actually paid, the fairness axis of the flow accounting."""
        out: dict[int, float] = {}
        for r in self.records:
            if r.comm is None:
                continue
            for cid, bits in r.comm.uplink:
                out[cid] = out.get(cid, 0.0) + bits / 8.0
        return out

    # ---- Fig. 6: time breakdown --------------------------------------------

    def mean_breakdown(self) -> dict[str, float]:
        """Average per-round wall/simulated times: the Fig. 6 bars."""
        if not self.records:
            raise ValueError("empty history")
        n = len(self.records)
        return {
            "compress_s": sum(r.compress_seconds for r in self.records) / n,
            "train_s": sum(r.train_seconds for r in self.records) / n,
            "comm_uncompressed_s": self.time.max_total / n,
            "comm_actual_s": self.time.actual_total / n,
        }
