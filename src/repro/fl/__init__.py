"""Federated-learning engine: Algorithm 1 with pluggable algorithms."""

from repro.fl.algorithms import Algorithm, RoundPlan, make_algorithm
from repro.fl.availability import (
    AvailabilityAwareSampler,
    BernoulliAvailability,
    MarkovAvailability,
)
from repro.fl.client import Client, LocalTrainResult
from repro.fl.config import ALGORITHMS, ExperimentConfig
from repro.fl.decentralized import (
    DecentralizedSimulation,
    mixing_matrix,
    random_regular_edges,
    ring_edges,
)
from repro.fl.history import History, RoundRecord
from repro.fl.sampler import UniformSampler
from repro.fl.simulation import Simulation, run_experiment

__all__ = [
    "ExperimentConfig",
    "ALGORITHMS",
    "Client",
    "LocalTrainResult",
    "UniformSampler",
    "Algorithm",
    "RoundPlan",
    "make_algorithm",
    "History",
    "RoundRecord",
    "Simulation",
    "run_experiment",
    "DecentralizedSimulation",
    "mixing_matrix",
    "ring_edges",
    "random_regular_edges",
    "BernoulliAvailability",
    "MarkovAvailability",
    "AvailabilityAwareSampler",
]
