"""The federated simulation engine — Algorithm 1 end to end.

One :class:`Simulation` owns the dataset, partition, client pool, network
links, global model and algorithm, and advances round by round:

1. sample the client set ``S_t`` (Alg. 1 line 7);
2. the algorithm plans ratios/coefficients (BCRS, Alg. 2);
3. the selected clients train locally from ``w_t`` (lines 9–11, 21–27) and
   compress their updates (line 12) — dispatched as independent tasks to a
   pluggable execution backend (:mod:`repro.exec`: serial, thread pool, or
   forked process pool), all of which yield bit-identical seeded results;
4. the round's communication times are scored with the Sec. 5.2 metrics;
5. the server aggregates (lines 14–18, with the OPWA mask of Alg. 3 when
   enabled) and evaluates the new global model.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate, SparseUpdate
from repro.compression.registry import make_compressor
from repro.compression.sparsifiers import k_from_ratio
from repro.core.arena import AggregationArena
from repro.core.opwa import opwa_mask_from_updates
from repro.core.server_opt import make_server_optimizer
from repro.core.overlap import overlap_distribution
from repro.data.datasets import DATASET_SPECS, train_test_split
from repro.data.partition import dirichlet_partition, iid_partition, shard_partition
from repro.exec import ClientTask, TrainSpec
from repro.fl.algorithms import Algorithm, make_algorithm
from repro.fl.config import ExperimentConfig
from repro.fl.engine import EngineMixin, build_config_model
from repro.fl.history import History, RoundComm, RoundRecord
from repro.fl.sampler import UniformSampler
from repro.network.cost import LinkSpec, model_bits
from repro.network.links import TimeVaryingLink
from repro.network.transport import FaultInjector, Payload, Transport
from repro.obs import NULL_OBS, Obs
from repro.obs.tracer import trace_clock
from repro.nn.params import get_flat_params, num_parameters, set_flat_params
from repro.population import ClientPool, CompressorPool, Population, default_cache_size
from repro.population.table import LinkColumns
from repro.robust.aggregators import robust_aggregate
from repro.simtime.events import SpanLog
from repro.simtime.profiles import pipeline_times
from repro.utils.rng import RngFactory

__all__ = ["Simulation", "run_experiment"]


class Simulation(EngineMixin):
    """A fully-seeded FL run; the round's client work runs on ``backend``.

    ``context`` is an optional :class:`~repro.fl.context.SimulationContext`
    carrying prebuilt dataset/partition/population products for this
    config's dataset key (cross-cell sweep caching). Construction draws
    exactly the same named RNG streams either way, so seeded histories are
    bit-identical with or without one.
    """

    #: Whether compressors may write into the arena's per-round banks.
    #: True only where an update's (indices, values) views never outlive
    #: the double buffer: the flat synchronous round loop. The event-driven
    #: protocols carry updates across aggregation windows (semisync
    #: carryover) and the hierarchical protocol accumulates updates across
    #: per-edge sub-rounds, so their compressors keep allocating.
    _arena_compress: bool = True

    def __init__(
        self, config: ExperimentConfig, obs: Obs | None = None, context=None
    ):
        self.config = config
        # Observability is deliberately NOT part of ExperimentConfig — it
        # never affects the experiment, so it must not perturb spec hashes.
        self.obs = obs if obs is not None else NULL_OBS
        rngs = RngFactory(config.seed)

        # Data: shared templates for train/test, then a client partition —
        # skipped entirely in the virtual-shard regime, where each client's
        # shard is a counter-seeded procedural draw from the corpus and the
        # fleet may dwarf it (repro.population). A context supplies all of
        # it prebuilt (the "partition" stream it consumed is independent of
        # every stream drawn below, so nothing here shifts).
        if context is not None:
            context.check(config)
            self.train_set, self.test_set = context.train_set, context.test_set
            self.partition = context.partition
        else:
            spec = DATASET_SPECS[config.dataset]
            self.train_set, self.test_set = train_test_split(
                spec, config.num_train, config.num_test, seed=config.seed
            )
            if config.virtual_shards:
                self.partition = None
            elif config.partition == "dirichlet":
                self.partition = dirichlet_partition(
                    self.train_set.y, config.num_clients, config.beta, seed=rngs.stream("partition")
                )
            elif config.partition == "iid":
                self.partition = iid_partition(
                    self.train_set.y, config.num_clients, seed=rngs.stream("partition")
                )
            else:
                self.partition = shard_partition(
                    self.train_set.y, config.num_clients, seed=rngs.stream("partition")
                )

        # Model and its flat-parameter view.
        self.model = build_config_model(config, seed=rngs.stream("model"))
        self.global_params = get_flat_params(self.model)
        self.global_states = [a.copy() for a in self.model.state_arrays()]
        # The timing simulation can price a paper-scale model (e.g. ResNet-18's
        # volume) while the trained model stays CPU-sized; the compression and
        # aggregation pipeline is identical either way.
        self.volume_bits = (
            config.volume_override_bits
            if config.volume_override_bits is not None
            else model_bits(num_parameters(self.model))
        )

        # The fleet as a struct-of-arrays table: link/compute/size columns
        # for every client (O(fleet) bytes, not objects), with full Client
        # objects hydrated lazily for the sampled cohort only. The
        # partitioned regime replays the historical draw order, so seeded
        # runs reproduce the pre-population histories bit-for-bit.
        self.population = (
            context.make_population()
            if context is not None
            else Population.from_config(config, partition=self.partition)
        )
        flatten = config.model == "mlp"
        cache = (
            config.hydration_cache
            if config.hydration_cache is not None
            else default_cache_size(config.clients_per_round)
        )
        self.clients = ClientPool(
            self.population,
            self.train_set,
            config.batch_size,
            flatten_inputs=flatten,
            cache_size=cache,
            label_flip_fraction=(
                config.adversary_fraction
                if config.adversary == "label_flip"
                else 0.0
            ),
        )
        self.clients.observe(self.obs)

        # Network links (paper Sec. 5.2): a lazy LinkSpec view over the
        # population columns, optionally drifting per round (drift state is
        # O(fleet), so the partitioned regime only — config enforces it).
        self.links: list[LinkSpec] | LinkColumns = self.population.links
        self._varying: list[TimeVaryingLink] | None = None
        if config.time_varying_links:
            link_rng = rngs.stream("link-drift")
            self._varying = [
                TimeVaryingLink(l, link_rng, volatility=config.link_volatility)
                for l in self.links
            ]

        # Device timing profiles (repro.simtime): per-client compute speed
        # drawn once into the population's columns, viewed as DeviceProfiles
        # on demand. Used to price each round's virtual-time span; the
        # event-driven protocols schedule from them directly.
        self.devices = self.population.devices
        self.spans = SpanLog()  # per-client train/upload intervals (viz/ascii timeline)
        self.sim_clock = 0.0  # virtual time at which the last round completed

        self.sampler = UniformSampler(
            config.num_clients, config.clients_per_round, seed=rngs.stream("sampler")
        )
        self.algorithm: Algorithm = make_algorithm(config)
        # config.compressor swaps the client compressor implementation under
        # a compressing algorithm (e.g. "qsgd8" quantized uplinks beneath
        # topk's uniform-ratio plan); None keeps the algorithm's default.
        comp_name = (
            config.compressor
            if config.compressor is not None
            else self.algorithm.compressor_name
        )
        # Compressors hydrate on first use and persist forever (EF residuals
        # are client state); only ever-sampled clients pay the cost.
        self.compressors = (
            CompressorPool(comp_name, self.population) if comp_name else None
        )

        # Unified transport (repro.network.transport): every transfer is
        # priced through it. Compressed uploads are priced from the *actual*
        # emitted bits — unless the run simulates a paper-scale volume
        # (volume_override_bits), where the trained model is smaller than
        # the priced one and the planned-ratio approximation must stand in.
        self.transport = Transport.from_config(config)
        # Transport fault injection (None when both probabilities are zero —
        # the honest path performs no per-upload fate draws at all).
        self.faults = FaultInjector.from_config(config)
        self.dense_size = num_parameters(self.model)
        self._price_from_updates = (
            self.compressors is not None and config.volume_override_bits is None
        )

        # The fused upload→aggregate arena: preallocated pack buffers, the
        # float64 accumulator and step scratch every round reuses, plus the
        # double-buffered compressor banks. Compress-into-bank is gated to
        # fixed-k compressors (their per-task output size is preplannable),
        # flat-sync protocols (update views must not outlive the double
        # buffer), and in-process backends (forked workers cannot see the
        # parent's post-fork block plans).
        self.arena = AggregationArena(self.dense_size)
        self._fixed_k_compressors = bool(
            comp_name
            and getattr(make_compressor(comp_name, seed=0), "fixed_k", False)
        )
        self._exec_arena = (
            self.arena
            if (
                self._arena_compress
                and self._fixed_k_compressors
                and config.backend in ("serial", "thread")
            )
            else None
        )

        # Server optimizer over the aggregated pseudo-gradient (FedOpt family;
        # plain SGD with lr=server_step and no momentum is Algorithm 1 verbatim).
        self.server_opt = self._make_server_opt()

        self.history = History()
        self.round_index = 0
        #: Sparse updates of the most recent round (for overlap analysis, Fig. 4).
        self.last_round_updates: list[CompressedUpdate] = []

        self._train_spec = TrainSpec.from_config(config)

    # ------------------------------------------------------- shared helpers
    # (used by this synchronous round loop and by the event-driven
    # protocols in repro.simtime.protocols — one copy of the semantics)

    def _should_evaluate(self) -> bool:
        """Evaluation cadence: every ``eval_every`` rounds plus the last."""
        cfg = self.config
        return (self.round_index % cfg.eval_every == 0) or (
            self.round_index == cfg.rounds - 1
        )

    def _make_server_opt(self):
        """One server optimizer per aggregation point (the hierarchical
        protocol builds one per edge with identical hyperparameters)."""
        cfg = self.config
        if cfg.server_optimizer == "sgd":
            return make_server_optimizer(
                "sgd", lr=cfg.server_step, momentum=cfg.server_momentum
            )
        return make_server_optimizer("adam", lr=cfg.server_step)

    def _aggregate_into(
        self, params: np.ndarray, server_opt, updates: list[CompressedUpdate], weights, use_opwa: bool
    ) -> tuple[np.ndarray, float | None]:
        """Alg. 1 lines 14–18 against an explicit (params, optimizer) pair.

        Returns (stepped params, OPWA singleton-fraction diagnostic). The
        flat protocol applies it to the global model; the hierarchical one
        to each edge model, with the OPWA mask scoped to the edge's updates.
        """
        cfg = self.config
        mask = None
        singleton = None
        sparse = [u for u in updates if isinstance(u, SparseUpdate)]
        if sparse:
            singleton = overlap_distribution(sparse).singleton_fraction()
        if use_opwa and sparse:
            mask = opwa_mask_from_updates(
                sparse, cfg.gamma, required_overlap=cfg.required_overlap
            )
        arena = self.arena
        # aggregator="mean" routes straight through weighted_sparse_sum with
        # the identical arguments/buffers — bit-identical to every prior PR.
        pseudo_grad = robust_aggregate(
            updates,
            np.asarray(weights),
            aggregator=cfg.aggregator,
            trim_beta=cfg.trim_beta,
            clip_tau=cfg.clip_tau,
            mask=mask,
            arena=arena,
        )
        stepped = server_opt.step(
            params, pseudo_grad, out=params, scratch=arena.step_scratch
        )
        return stepped, singleton

    def _aggregate_updates(
        self, updates: list[CompressedUpdate], weights, use_opwa: bool
    ) -> float | None:
        """Alg. 1 lines 14–18: (masked) weighted sparse sum + server step.

        Returns the OPWA singleton-fraction diagnostic (None when dense).
        """
        self.global_params, singleton = self._aggregate_into(
            self.global_params, self.server_opt, updates, weights, use_opwa
        )
        return singleton

    @staticmethod
    def _average_states_into(targets: list[np.ndarray], freqs, state_arrays_per_client) -> None:
        """FedAvg ``state_arrays_per_client`` by ``freqs`` into ``targets``."""
        for j in range(len(targets)):
            acc = np.zeros_like(targets[j], dtype=np.float64)
            for f, states in zip(freqs, state_arrays_per_client):
                acc += f * states[j]
            targets[j] = acc.astype(targets[j].dtype)

    def _average_states(self, freqs, state_arrays_per_client) -> None:
        """FedAvg the persistent buffers (BN running stats) by ``freqs``."""
        if not self.global_states:
            return
        self._average_states_into(self.global_states, freqs, state_arrays_per_client)

    def _payload_for(self, update: CompressedUpdate | None, ratio: float | None) -> Payload:
        """What this dispatch puts on the wire.

        Priced from the *actual emitted* update whenever one exists — sparse
        and quantized encodings alike; for deferred training (async
        dispatch) the Top-K wire size is predicted exactly
        (``k_from_ratio`` entries of (index, value) pairs — the same count
        the compressor will emit). The planned-ratio × factor-2
        approximation remains only for ``volume_override_bits`` runs.
        """
        if not self._price_from_updates:
            return Payload.planned(self.volume_bits, ratio)
        if update is not None:
            return Payload.from_update(update)
        if ratio is None:
            return Payload.dense(self.volume_bits)
        return Payload.sparse(k_from_ratio(self.dense_size, float(ratio)))

    def _stage_dispatch(
        self,
        cid: int,
        ratio: float | None,
        update: CompressedUpdate | None,
        *,
        payload: Payload | None = None,
    ) -> tuple[Payload, float, float, float]:
        """(payload, download, train, exclusive-upload) of one dispatch —
        the single pricing computation every protocol path shares.
        ``payload`` overrides the derived wire volume (fault injection
        re-prices truncated uploads at their delivered bits)."""
        cfg = self.config
        if payload is None:
            payload = self._payload_for(update, ratio)
        if self.obs.enabled:
            self.obs.metrics.counter("wire_bits", kind=payload.kind).inc(payload.bits)
        down, train_t, up = pipeline_times(
            self.devices[cid],
            volume_bits=self.volume_bits,
            ratio=ratio,
            num_samples=int(self.population.data_sizes[cid]),
            epochs=cfg.local_epochs,
            include_downlink=cfg.include_downlink,
            downlink_factor=cfg.downlink_factor,
            link=self.links[cid],
            payload=payload,
        )
        return payload, down, train_t, up

    def _price_dispatch(
        self,
        cid: int,
        ratio: float | None,
        t: float,
        tag: int,
        *,
        update: CompressedUpdate | None = None,
        payload: Payload | None = None,
    ) -> tuple[float, float, float, Payload]:
        """(download, train, upload, payload) of one dispatch at ``t``.

        Upload time is the *exclusive-link* price; contended transports
        resolve the real finish later (the upload span is then logged at
        resolution, not here).
        """
        payload, down, train_t, up = self._stage_dispatch(
            cid, ratio, update, payload=payload
        )
        t0 = t + down
        self.spans.add(cid, "train", t0, t0 + train_t, tag=tag)
        if not self.transport.contended:
            self.spans.add(cid, "upload", t0 + train_t, t0 + train_t + up, tag=tag)
        return down, train_t, up, payload

    def _price_round(
        self,
        selected,
        ratios,
        updates: list[CompressedUpdate] | None,
        t: float,
        tag: int,
    ) -> tuple[list[float], list[float], list[float]]:
        """Price one synchronized batch of dispatches starting at ``t``.

        Returns (per-dispatch pipeline durations, uplink bits, downlink
        bits), aligned with ``selected``. Exclusive transports keep the
        historical per-link arithmetic bit-for-bit; fair transports admit
        every upload into one fresh ingress epoch and water-fill, so the
        round's finish times reflect server-side bandwidth sharing.
        """
        cfg = self.config
        staged = []
        for pos, cid in enumerate(selected):
            cid = int(cid)
            ratio = None if ratios is None else float(ratios[pos])
            update = None if updates is None else updates[pos]
            payload, down, train_t, up = self._stage_dispatch(cid, ratio, update)
            staged.append((cid, payload, down, train_t, up))

        ends: list[float] | None = None
        if self.transport.contended:
            flows = [
                (payload, self.links[cid], (t + down) + train_t)
                for cid, payload, down, train_t, _ in staged
            ]
            with self.obs.tracer.span("transport.resolve", cat="net", flows=len(flows)):
                ends = [rec.end for rec in self.transport.resolve_uploads(flows)]

        durations: list[float] = []
        up_bits: list[float] = []
        down_bits: list[float] = []
        for pos, (cid, payload, down, train_t, up) in enumerate(staged):
            t0 = t + down
            self.spans.add(cid, "train", t0, t0 + train_t, tag=tag)
            if ends is None:
                self.spans.add(cid, "upload", t0 + train_t, t0 + train_t + up, tag=tag)
                durations.append(down + train_t + up)
            else:
                self.spans.add(cid, "upload", t0 + train_t, ends[pos], tag=tag)
                durations.append(ends[pos] - t)
            up_bits.append(payload.bits)
            down_bits.append(self.volume_bits if cfg.include_downlink else 0.0)
        return durations, up_bits, down_bits

    @staticmethod
    def _comm_maps(selected, bits_list) -> dict[int, float]:
        """Accumulate a per-endpoint bits map (ids may repeat)."""
        out: dict[int, float] = {}
        for cid, bits in zip(selected, bits_list):
            out[int(cid)] = out.get(int(cid), 0.0) + bits
        return out

    # ------------------------------------------------------------------ round

    def run_round(self) -> RoundRecord:
        """Advance one communication round and return its record."""
        cfg = self.config
        tracer = self.obs.tracer
        round_cm = tracer.span("round", cat="sim", round=self.round_index)
        round_cm.__enter__()
        with tracer.span("sample", cat="sim"):
            selected = self.sampler.sample()
        if self._varying is not None:
            self.links = [tv.step() for tv in self._varying]
        sel_links = [self.links[i] for i in selected]

        # f_i = |D_i| / n over the selected set (Alg. 1 lines 8/13) — read
        # from the population columns so the parent never hydrates clients
        # (under the process backend, hydration belongs to the workers).
        sizes = self.population.sizes_of(selected)
        freqs = sizes / sizes.sum()

        with tracer.span("plan", cat="sim"):
            plan = self.algorithm.plan(sel_links, freqs, self.volume_bits)

        # Local training + compression (lines 11–12): one task per selected
        # client, dispatched to the configured execution backend.
        tasks = [
            ClientTask(
                position=pos,
                cid=int(cid),
                ratio=None if plan.ratios is None else float(plan.ratios[pos]),
            )
            for pos, cid in enumerate(selected)
        ]
        if self._exec_arena is not None:
            # Lay out this round's compressor output blocks (flipping the
            # double buffer, which keeps last_round_updates' views valid).
            self.arena.plan_compress(
                [
                    None
                    if t.ratio is None
                    else k_from_ratio(self.dense_size, t.ratio)
                    for t in tasks
                ]
            )
        results = self._run_tasks(
            tasks, self.global_params, self.global_states, self._train_spec
        )
        train_seconds = sum(r.train_seconds for r in results)
        compress_seconds = sum(r.compress_seconds for r in results)
        updates: list[CompressedUpdate] = [r.update for r in results]

        # Transport fault injection: decide each upload's fate — a pure
        # function of (seed, round, cid), so fates are backend-invariant.
        # ``delivered[pos] is None`` marks a lost upload; ``wire_updates``
        # is what pricing charges (truncated payloads re-priced at their
        # delivered bits; drops burn their full bits in flight).
        delivered: list[CompressedUpdate | None] = list(updates)
        wire_updates: list[CompressedUpdate] = updates
        if self.faults is not None:
            wire_updates = list(updates)
            for pos, cid in enumerate(selected):
                kind, frac = self.faults.fate(self.round_index, int(cid))
                if kind == "deliver":
                    continue
                trunc = (
                    FaultInjector.truncate(updates[pos], frac)
                    if kind == "truncate"
                    else None
                )
                delivered[pos] = trunc
                if trunc is not None:
                    wire_updates[pos] = trunc
        surv = [pos for pos, u in enumerate(delivered) if u is not None]
        agg_updates = [delivered[pos] for pos in surv]
        self.last_round_updates = agg_updates

        # OPWA mask (line 17), aggregation (lines 14/16/18), and FedAvg of
        # the persistent buffers (BN running stats) — over the *delivered*
        # cohort, weights renormalized when uploads were lost. A round that
        # loses every upload is well-defined: the model and BN state are
        # unchanged and the record carries num_participants=0.
        with tracer.span("aggregate", cat="sim"):
            if len(surv) == len(selected):
                singleton = self._aggregate_updates(
                    agg_updates, plan.weights, plan.use_opwa
                )
                self._average_states(freqs, [r.state_arrays for r in results])
            elif surv:
                w = np.asarray([plan.weights[pos] for pos in surv], dtype=np.float64)
                if w.sum() > 0:
                    w = w / w.sum()
                singleton = self._aggregate_updates(agg_updates, w, plan.use_opwa)
                f = freqs[surv]
                self._average_states(
                    f / f.sum(), [results[pos].state_arrays for pos in surv]
                )
            else:
                singleton = None

        if self._should_evaluate():
            with tracer.span("evaluate", cat="sim"):
                test_acc = self.evaluate()
        else:
            test_acc = None

        realized = (
            tuple(float(u.density) for u in updates if isinstance(u, SparseUpdate))
            if plan.ratios is not None
            else tuple(1.0 for _ in updates)
        )

        # Virtual-clock span: the synchronous barrier releases when the
        # slowest *aggregated* client has downloaded, computed, and
        # uploaded. Clients the plan zero-weighted (deadline_topk drops
        # stragglers) still burn device time — their spans are logged —
        # but the server does not wait for them. Uploads are priced through
        # the transport from the actually-emitted payloads; with fair
        # contention the round is one shared-ingress epoch.
        sim_start = self.sim_clock
        with tracer.span("transport.price", cat="net", dispatches=len(selected)):
            durations, up_bits, down_bits = self._price_round(
                selected, plan.ratios, wire_updates, sim_start, tag=self.round_index
            )
        # The barrier waits on delivered contributors; an all-lost round
        # still spans the slowest expected upload (the server's timeout).
        barrier = surv if surv else range(len(selected))
        round_span = 0.0
        for pos in barrier:
            if plan.weights[pos] > 0:
                round_span = max(round_span, durations[pos])
        self.sim_clock = sim_start + round_span
        comm = RoundComm.from_maps(
            uplink=self._comm_maps(selected, up_bits),
            downlink=self._comm_maps(selected, down_bits),
        )

        record = RoundRecord(
            round_index=self.round_index,
            selected=tuple(int(i) for i in selected),
            train_loss=float(np.mean([r.mean_loss for r in results])),
            test_accuracy=test_acc,
            times=plan.times,
            ratios=realized,
            weights=tuple(float(w) for w in plan.weights),
            singleton_fraction=singleton,
            train_seconds=train_seconds,
            compress_seconds=compress_seconds,
            sim_start=sim_start,
            sim_end=self.sim_clock,
            mean_staleness=0.0,
            comm=comm,
            num_participants=(len(surv) if self.faults is not None else None),
        )
        self.history.append(record)
        self.round_index += 1
        round_cm.__exit__(None, None, None)
        if self.obs.enabled:
            self._observe_round_end(round_cm)
        return record

    def _observe_round_end(self, round_cm=None) -> None:
        """Per-round metrics bookkeeping shared by every protocol loop."""
        metrics = self.obs.metrics
        metrics.counter("rounds_completed").inc()
        if round_cm is not None and getattr(round_cm, "_t0", None) is not None:
            wall = trace_clock() - round_cm._t0
            if wall > 0:
                metrics.gauge("rounds_per_second").set(1.0 / wall)
        metrics.snapshot(self.round_index - 1)

    def run(self, rounds: int | None = None) -> History:
        """Run ``rounds`` (default: the configured count) and return history."""
        total = self.config.rounds if rounds is None else rounds
        for _ in range(total):
            self.run_round()
        return self.history

    # ------------------------------------------------------------------ eval

    def evaluate(self, batch_size: int = 256) -> float:
        """Test accuracy of the current global model."""
        set_flat_params(self.model, self.global_params)
        for live, saved in zip(self.model.state_arrays(), self.global_states):
            live[...] = saved
        correct = 0
        n = len(self.test_set)
        flatten = self.config.model == "mlp"
        for start in range(0, n, batch_size):
            x = self.test_set.x[start : start + batch_size]
            y = self.test_set.y[start : start + batch_size]
            if flatten:
                x = x.reshape(x.shape[0], -1)
            logits = self.model(x, training=False)
            correct += int((logits.argmax(axis=1) == y).sum())
        return correct / n


def run_experiment(
    config: ExperimentConfig, obs: Obs | None = None, context=None
) -> History:
    """Convenience: build and run a full simulation, releasing its workers.

    Honors ``config.mode`` — event-driven protocols run when it says so.
    ``context`` optionally supplies a prebuilt
    :class:`~repro.fl.context.SimulationContext` (cross-cell caching);
    histories are bit-identical with or without one.
    """
    from repro.simtime import make_simulation

    with make_simulation(config, obs=obs, context=context) as sim:
        return sim.run()
