"""Shared execution-engine lifecycle for the simulation classes.

Both :class:`~repro.fl.simulation.Simulation` and
:class:`~repro.fl.decentralized.DecentralizedSimulation` own a lazily-created
:class:`~repro.exec.ExecutionBackend`; this mixin centralizes that lifecycle:
backend construction from the host's ``config``/``clients``/``compressors``/
``model``, replica-model building for parallel workers, and teardown.

``close()`` is **permanent**: parallel backends advance per-client state
(batch-loader RNG streams, error-feedback residuals) inside their workers,
so the parent's copies go stale the moment a round runs. Re-creating a
backend after close() would silently replay that stale state — instead any
further backend access raises, and a fresh simulation must be built.
"""

from __future__ import annotations

from repro.data.datasets import DATASET_SPECS
from repro.exec import ExecutionBackend, WorkerContext, make_backend
from repro.nn.models import build_model
from repro.obs import NULL_OBS

__all__ = ["build_config_model", "EngineMixin"]


def build_config_model(config, seed):
    """Build the config's model with the dataset's geometry unpacked.

    The single place that turns an ``ExperimentConfig`` into a model
    instance — used for the simulation's own model and for the parallel
    workers' replicas.
    """
    spec = DATASET_SPECS[config.dataset]
    return build_model(
        config.model,
        in_channels=spec.channels,
        image_size=spec.image_size,
        num_classes=spec.num_classes,
        seed=seed,
    )


class EngineMixin:
    """Lazy backend + permanent close + context-manager support.

    Hosts provide ``config`` (with ``backend``/``workers``/``dataset``/
    ``model``), ``clients``, ``compressors``, and ``model`` attributes.
    """

    _backend: ExecutionBackend | None = None
    _engine_closed: bool = False
    #: Observability bundle; hosts overwrite with a live Obs when requested.
    obs = NULL_OBS

    def _replica_model(self):
        """A fresh architecturally-identical model for a parallel worker.

        Workers fully re-initialize the model from the round's inputs before
        training, so the replica's own init seed is irrelevant.
        """
        return build_config_model(self.config, seed=0)

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend (created lazily so serial runs stay free)."""
        if self._engine_closed:
            raise RuntimeError(
                "simulation was closed; per-client state advanced inside the "
                "old backend's workers, so a new backend would replay stale "
                "state — build a fresh simulation instead"
            )
        if self._backend is None:
            # The host's arena (when compress-into-bank is enabled for its
            # protocol/backend/compressor combination) is shared by every
            # worker context: planned blocks are disjoint per position, so
            # thread workers never race on it.
            arena = getattr(self, "_exec_arena", None)
            self._backend = make_backend(
                self.config.backend,
                context=WorkerContext(
                    self.clients, self.compressors, self.model, arena=arena
                ),
                context_factory=lambda: WorkerContext(
                    self.clients, self.compressors, self._replica_model(), arena=arena
                ),
                workers=self.config.workers,
            )
        return self._backend

    def _run_tasks(self, tasks, global_params, global_states, spec):
        """``backend.run_round`` plus observability: the one fan-out site.

        Wraps the round's task execution in an ``exec.round`` span and, when
        observability is live, replays each task's wall-clock instants
        (stamped inside the worker by :meth:`WorkerContext.execute`) as
        ``client.train`` / ``client.compress`` spans on the worker's pid
        lane. perf_counter is process-shared on Linux, so worker timestamps
        line up with the parent trace without any clock translation.
        """
        obs = self.obs
        if not obs.enabled:
            return self.backend.run_round(tasks, global_params, global_states, spec)
        tracer, metrics = obs.tracer, obs.metrics
        with tracer.span("exec.round", cat="exec", tasks=len(tasks)):
            results = self.backend.run_round(tasks, global_params, global_states, spec)
        train_hist = metrics.histogram("task_train_seconds")
        compress_hist = metrics.histogram("task_compress_seconds")
        for r in results:
            if r.wall_start:
                tracer.name_lane(r.worker_pid, f"worker-{r.worker_pid}")
                tracer.add_span(
                    "client.train",
                    r.wall_start,
                    r.wall_compress,
                    cat="exec",
                    tid=r.worker_pid,
                    cid=r.cid,
                )
                tracer.add_span(
                    "client.compress",
                    r.wall_compress,
                    r.wall_compress + r.compress_seconds,
                    cat="exec",
                    tid=r.worker_pid,
                    cid=r.cid,
                )
                metrics.counter("worker_busy_seconds", worker=r.worker_pid).inc(
                    r.train_seconds + r.compress_seconds
                )
            train_hist.observe(r.train_seconds)
            compress_hist.observe(r.compress_seconds)
        metrics.counter("tasks_executed").inc(len(results))
        return results

    def close(self) -> None:
        """Shut down backend workers and retire this simulation's engine.

        Idempotent; afterwards any backend access raises (see module note).
        """
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        self._engine_closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()
