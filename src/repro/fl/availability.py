"""Client availability modeling (cross-device churn).

Edge devices participate intermittently — charging, idle, on WiFi. The
paper samples uniformly from all clients; this extension gates sampling on
a per-round availability process so experiments can study BCRS under churn.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction

__all__ = ["BernoulliAvailability", "MarkovAvailability", "AvailabilityAwareSampler"]


class BernoulliAvailability:
    """Each client is independently available with probability ``p`` each round."""

    def __init__(self, num_clients: int, p: float, seed: int | np.random.Generator = 0):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        self.num_clients = int(num_clients)
        # p=0 (a fleet that is fully offline) is legal: the sampler's
        # on_empty policy defines what a zero-available round does.
        self.p = check_fraction("p", p, allow_zero=True)
        self.rng = as_generator(seed)

    def step(self) -> np.ndarray:
        """Boolean availability mask for the next round."""
        return self.rng.random(self.num_clients) < self.p


class MarkovAvailability:
    """Two-state (online/offline) Markov chain per client — bursty churn.

    ``p_stay_on`` / ``p_stay_off`` are the self-transition probabilities;
    high values model devices that stay online (or offline) for long spells,
    unlike the memoryless Bernoulli model.
    """

    def __init__(
        self,
        num_clients: int,
        p_stay_on: float = 0.9,
        p_stay_off: float = 0.7,
        seed: int | np.random.Generator = 0,
    ):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        check_fraction("p_stay_on", p_stay_on, allow_zero=True)
        check_fraction("p_stay_off", p_stay_off, allow_zero=True)
        self.num_clients = int(num_clients)
        self.p_stay_on = float(p_stay_on)
        self.p_stay_off = float(p_stay_off)
        self.rng = as_generator(seed)
        self.state = np.ones(num_clients, dtype=bool)  # start online

    def step(self) -> np.ndarray:
        # Online stays online w.p. p_stay_on; offline comes online w.p.
        # 1 − p_stay_off.
        u = self.rng.random(self.num_clients)
        self.state = np.where(self.state, u < self.p_stay_on, u >= self.p_stay_off)
        return self.state.copy()


class AvailabilityAwareSampler:
    """Sample up to ``clients_per_round`` among currently-available clients.

    If fewer clients are available than requested, the round proceeds with
    what there is. A round where *zero* clients are available is
    well-defined either way (``on_empty``):

    - ``"wait"`` (default): resample availability — the scheduler idles
      until devices come back, mirroring production FL schedulers. Raises
      ``RuntimeError`` only after ``max_waits`` consecutive empty steps
      (e.g. a Bernoulli process with ``p=0``, which can never produce one).
    - ``"skip"``: return an empty array immediately, letting the caller
      skip the round (one availability step is consumed either way).

    With a :class:`~repro.population.table.Population` attached, every
    availability step is mirrored into the fleet's ``available`` column, so
    any column reader (analysis, BCRS planning, per-edge slicing) sees the
    same churn state the sampler acted on — without per-client objects.
    """

    def __init__(
        self,
        availability: BernoulliAvailability | MarkovAvailability,
        clients_per_round: int,
        seed: int | np.random.Generator = 0,
        *,
        max_waits: int = 1000,
        on_empty: str = "wait",
        population=None,
    ):
        if clients_per_round < 1:
            raise ValueError(f"clients_per_round must be >= 1, got {clients_per_round}")
        if on_empty not in ("wait", "skip"):
            raise ValueError(f"on_empty must be 'wait' or 'skip', got {on_empty!r}")
        if population is not None and population.num_clients != availability.num_clients:
            raise ValueError(
                f"population of {population.num_clients} clients does not match "
                f"availability model of {availability.num_clients}"
            )
        self.availability = availability
        self.clients_per_round = int(clients_per_round)
        self.rng = as_generator(seed)
        self.max_waits = int(max_waits)
        self.on_empty = on_empty
        self.population = population

    def sample(self) -> np.ndarray:
        """Available-client ids for this round (sorted, possibly < target).

        Empty array ⇔ nobody was available and ``on_empty="skip"``.
        """
        for _ in range(self.max_waits):
            mask = self.availability.step()
            if self.population is not None:
                self.population.available[:] = mask
            candidates = np.flatnonzero(mask)
            if candidates.size:
                k = min(self.clients_per_round, candidates.size)
                chosen = self.rng.choice(candidates, size=k, replace=False)
                return np.sort(chosen)
            if self.on_empty == "skip":
                return np.empty(0, dtype=np.int64)
        raise RuntimeError(f"no clients became available in {self.max_waits} waits")
