"""Client-side local training — the LOCALTRAINING procedure of Algorithm 1.

A client receives the global model ``w_t``, runs ``E`` epochs of mini-batch
SGD on its local shard, and returns the *update* ``Δw = w_t − w_E`` (positive
update = descent direction, matching Alg. 1 line 26) together with its
post-training persistent state (BN running stats, which FedAvg averages like
any other buffer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.data.loader import BatchLoader
from repro.nn.layers import Layer
from repro.nn.losses import cross_entropy
from repro.nn.optim import SGD, Adam
from repro.nn.params import get_flat_params, set_flat_params

__all__ = ["LocalTrainResult", "Client"]


@dataclass
class LocalTrainResult:
    """Output of one client round."""

    delta: np.ndarray  # Δw = w_t − w_local, flat float32
    state_arrays: list[np.ndarray]  # post-training persistent buffers
    mean_loss: float  # average training loss over the round's batches
    num_batches: int


class Client:
    """One federated participant with a fixed local shard."""

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        batch_size: int,
        rng: np.random.Generator,
        *,
        flatten_inputs: bool = False,
    ):
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} has an empty shard")
        self.client_id = int(client_id)
        self.dataset = dataset
        self.loader = BatchLoader(dataset, batch_size, rng=rng)
        self.flatten_inputs = bool(flatten_inputs)

    @property
    def num_samples(self) -> int:
        """Local shard size ``n_k``."""
        return len(self.dataset)

    def local_train(
        self,
        model: Layer,
        global_params: np.ndarray,
        *,
        lr: float,
        epochs: int,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        proximal_mu: float = 0.0,
        optimizer: str = "sgd",
        global_states: list[np.ndarray] | None = None,
    ) -> LocalTrainResult:
        """Run LOCALTRAINING on a shared model instance.

        The caller owns the model object; this method loads ``global_params``
        (and, when given, the ``global_states`` persistent buffers — BN
        running stats) into it, trains in place, and reads the result out —
        the single-process analogue of shipping the model to the device.
        Because the model is fully re-initialized from the round's inputs,
        any architecturally-identical replica produces the same result,
        which is what lets execution backends train on private model copies.

        ``proximal_mu > 0`` adds FedProx's proximal gradient
        ``μ·(w − w_t)`` each step, pulling local iterates toward the global
        model to counter client drift (Li et al., the paper's FedProx [27]).
        """
        set_flat_params(model, global_params)
        if global_states is not None:
            for live, saved in zip(model.state_arrays(), global_states):
                live[...] = saved
        params = model.parameters()
        if optimizer == "sgd":
            opt = SGD(params, lr=lr, momentum=momentum, weight_decay=weight_decay)
        elif optimizer == "adam":
            opt = Adam(params, lr=lr, weight_decay=weight_decay)
        else:
            raise ValueError(f"unknown local optimizer {optimizer!r}")
        anchors = [p.data.copy() for p in params] if proximal_mu > 0 else None
        total_loss = 0.0
        batches = 0
        for _ in range(epochs):
            for x, y in self.loader:
                if self.flatten_inputs:
                    x = x.reshape(x.shape[0], -1)
                opt.zero_grad()
                logits = model(x, training=True)
                loss, grad = cross_entropy(logits, y)
                model.backward(grad)
                if anchors is not None:
                    for p, anchor in zip(params, anchors):
                        p.grad += proximal_mu * (p.data - anchor)
                opt.step()
                total_loss += loss
                batches += 1
        delta = global_params - get_flat_params(model)
        states = [a.copy() for a in model.state_arrays()]
        return LocalTrainResult(
            delta=delta,
            state_arrays=states,
            mean_loss=total_loss / max(batches, 1),
            num_batches=batches,
        )
