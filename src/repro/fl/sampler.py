"""Client sampling: the fraction-C uniform selection of FedAvg (Alg. 1 line 7).

Sampling is column-free: it draws ids from ``rng.choice(num_clients, …)``
without touching client objects, so selecting 10K ids out of a million-client
population costs the same as out of a hundred.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["UniformSampler"]


class UniformSampler:
    """Sample ``clients_per_round`` distinct clients uniformly each round."""

    def __init__(self, num_clients: int, clients_per_round: int, seed: int | np.random.Generator = 0):
        if not 1 <= clients_per_round <= num_clients:
            raise ValueError(
                f"need 1 <= clients_per_round <= num_clients, got "
                f"{clients_per_round} of {num_clients}"
            )
        self.num_clients = int(num_clients)
        self.clients_per_round = int(clients_per_round)
        self.rng = as_generator(seed)

    def sample(self) -> np.ndarray:
        """Return sorted distinct client ids for this round (the set S_t)."""
        ids = self.rng.choice(self.num_clients, size=self.clients_per_round, replace=False)
        return np.sort(ids)
