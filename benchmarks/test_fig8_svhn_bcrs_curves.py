"""Fig. 8 — SVHN accuracy-vs-round curves: BCRS vs baselines.

Same panel grid as Fig. 7 on the SVHN stand-in (imbalanced class priors).
Shape claims: curves rise; severe compression degrades uniform TopK below
FedAvg; BCRS is at least competitive with TopK (the paper shows it above).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, run_comparison, series_text

ALGS = ["fedavg", "topk", "eftopk", "bcrs"]
DATASET = "svhn"


@pytest.mark.parametrize("beta,cr", [(0.1, 0.1), (0.5, 0.1), (0.1, 0.01), (0.5, 0.01)])
def test_fig8_panel(once, beta, cr):
    base = bench_config(DATASET, "fedavg", beta=beta)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    for alg in ALGS:
        emit(
            f"Fig. 8 — {DATASET} beta={beta} CR={cr}: {alg}",
            series_text(results[alg], every=10),
        )

    for alg in ALGS:
        _, accs = results[alg].accuracy_series()
        assert accs[-1] > accs[0], alg
    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    if cr == 0.01:
        assert acc["topk"] < acc["fedavg"], acc
    # Non-inferiority margin absorbs small-scale noise on the easier dataset.
    assert acc["bcrs"] > acc["topk"] - 0.05, acc
