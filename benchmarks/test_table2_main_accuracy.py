"""Table 2 — final test accuracy of all five algorithms.

Paper: FedAvg (uncompressed), TOPK, EFTOPK, BCRS, BCRS+OPWA on
CIFAR-10 / SVHN / CIFAR-100 for β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}.
Shape claims reproduced here: aggressive uniform compression (CR=0.01)
degrades TopK well below FedAvg; BCRS improves on TopK; BCRS+OPWA recovers
most of the gap (and can exceed FedAvg at CR=0.1).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, run_comparison
from repro.experiments.paper_reference import TABLE2

ALGS = ["fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"]
SETTINGS = [(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)]


@pytest.mark.parametrize("dataset", ["cifar10", "svhn", "cifar100"])
@pytest.mark.parametrize("beta,cr", SETTINGS)
def test_table2_cell(once, dataset, beta, cr):
    base = bench_config(dataset, "fedavg", beta=beta)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    rows = []
    for alg in ALGS:
        measured = results[alg].final_accuracy()
        paper = TABLE2[dataset][(beta, cr)][alg]
        rows.append([alg, f"{measured:.4f}", f"{paper:.4f}"])
    emit(
        f"Table 2 — {dataset}, beta={beta}, CR={cr}",
        format_table(["algorithm", "measured", "paper"], rows),
    )

    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    # Shape claim 1: the paper's full method beats plain uniform TopK.
    assert acc["bcrs_opwa"] > acc["topk"], acc
    # Shape claim 2: at CR=0.01 uniform TopK falls clearly below FedAvg.
    if cr == 0.01:
        assert acc["topk"] < acc["fedavg"], acc
    # Shape claim 3: BCRS+OPWA lands within reach of (or above) FedAvg,
    # unlike TopK at severe compression.
    if cr == 0.01:
        assert (acc["fedavg"] - acc["bcrs_opwa"]) < (acc["fedavg"] - acc["topk"]), acc
