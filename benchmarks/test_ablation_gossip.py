"""Ablation A6 — centralized BCRS+OPWA vs decentralized gossip (extension).

Not a paper artifact: positions the paper's server-centric design against
the decentralized alternative its related work cites (GossipFL). Shape
claims: both learn; gossip reaches consensus (distance shrinks); the
centralized method converges faster in rounds at equal compression, since
every round mixes all selected clients through the server instead of only
graph neighbors.
"""

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table
from repro.fl import Simulation
from repro.fl.decentralized import DecentralizedSimulation, ring_edges


def run_pair():
    cfg = bench_config("cifar10", "bcrs_opwa", beta=0.5, compression_ratio=0.1, rounds=25)
    central = Simulation(cfg)
    central.run()
    dcfg = cfg.with_(num_clients=8, algorithm="topk")
    gossip = DecentralizedSimulation(dcfg, edges=ring_edges(8))
    gossip.run()
    return central, gossip


def test_ablation_gossip_vs_central(once):
    central, gossip = once(run_pair)

    rows = [
        ["centralized BCRS+OPWA", f"{central.history.final_accuracy():.4f}", "--"],
        [
            "gossip topk (ring)",
            f"{gossip.history[-1].mean_accuracy:.4f}",
            f"{gossip.consensus_distance():.4f}",
        ],
    ]
    emit("Ablation A6 — centralized vs decentralized (CR=0.1, beta=0.5)",
         format_table(["system", "accuracy", "consensus distance"], rows))

    assert central.history.final_accuracy() > 0.5
    assert gossip.history[-1].mean_accuracy > 0.3
    # Gossip models converge toward each other over rounds.
    early = gossip.history[2].consensus_distance
    late = gossip.history[-1].consensus_distance
    assert late <= early * 1.5  # disagreement does not blow up
    # Centralized mixing wins at equal round budget.
    assert central.history.final_accuracy() >= gossip.history[-1].mean_accuracy - 0.02
