"""Fig. 11 — OPWA training curves across enlarge rates γ (CIFAR-10, CR=0.1).

Paper panels: β=0.5 and β=0.1, γ ∈ {3..8} vs FedAvg. Shape claims: every γ
produces a learning curve; the best γ configuration is competitive with
FedAvg at CR=0.1 (the paper shows OPWA overtaking it around round 60).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, run_comparison, sweep

GAMMAS = [3.0, 4.0, 5.0, 6.0, 7.0, 8.0]


@pytest.mark.parametrize("beta", [0.5, 0.1])
def test_fig11_gamma_curves(once, beta):
    base = bench_config("cifar10", "bcrs_opwa", beta=beta, compression_ratio=0.1)
    results = once(sweep, base, "gamma", GAMMAS)
    fedavg = run_comparison(base, ["fedavg"])["fedavg"]

    rows = [["fedavg", f"{fedavg.final_accuracy():.4f}", f"{fedavg.best_accuracy():.4f}"]]
    for g in GAMMAS:
        h = results[g]
        rows.append([f"gamma={int(g)}", f"{h.final_accuracy():.4f}", f"{h.best_accuracy():.4f}"])
    emit(
        f"Fig. 11 — OPWA gamma curves, beta={beta}, CR=0.1",
        format_table(["run", "final acc", "best acc"], rows),
    )

    # Every gamma learns.
    for g in GAMMAS:
        _, accs = results[g].accuracy_series()
        assert accs[-1] > accs[0]
    # Best OPWA configuration is competitive with uncompressed FedAvg.
    best = max(results[g].final_accuracy() for g in GAMMAS)
    assert best > fedavg.final_accuracy() - 0.05, (best, fedavg.final_accuracy())
