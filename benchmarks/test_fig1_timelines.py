"""Fig. 1 — round timelines under no / uniform / adaptive compression.

Three clients with B1 > B2 > B3. Shape claims: without compression everyone
waits for C3's dense upload; uniform compression shrinks the round but keeps
proportional waiting; BCRS equalizes finish times so per-round waiting is
(near) zero while the round is no longer than uniform compression's.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.bcrs import schedule_ratios
from repro.experiments import format_table
from repro.network.cost import LinkSpec, model_bits, sparse_uplink_time, uplink_time

LINKS = [LinkSpec(2.0e6, 0.05), LinkSpec(1.0e6, 0.08), LinkSpec(0.5e6, 0.12)]
VOLUME = model_bits(200_000)
CR = 0.05


def build_timelines():
    dense = np.array([uplink_time(l, VOLUME) for l in LINKS])
    uniform = np.array([sparse_uplink_time(l, VOLUME, CR) for l in LINKS])
    sched = schedule_ratios(LINKS, VOLUME, CR)
    return dense, uniform, sched


def test_fig1_timelines(once):
    dense, uniform, sched = once(build_timelines)

    rows = []
    for i in range(3):
        rows.append([
            f"C{i + 1}",
            f"{dense[i]:.2f}s (wait {dense.max() - dense[i]:.2f})",
            f"{uniform[i]:.2f}s (wait {uniform.max() - uniform[i]:.2f})",
            f"{sched.scheduled_times[i]:.2f}s (wait {sched.t_bench - sched.scheduled_times[i]:.2f})",
        ])
    emit(
        "Fig. 1 — per-client uplink time (and waiting time) per round",
        format_table(["client", "no compression", "uniform CR", "BCRS adaptive"], rows),
    )

    # No compression: the straggler dominates the round.
    assert dense.max() == dense[2]
    # Uniform compression shortens the round but waiting persists.
    assert uniform.max() < dense.max()
    assert (uniform.max() - uniform.min()) > 0.1 * uniform.max()
    # Adaptive: round no longer than uniform, waiting ~eliminated for
    # unclipped clients.
    assert sched.t_bench <= uniform.max() * (1 + 1e-9)
    unclipped = (sched.ratios > CR) & (sched.ratios < 1.0)
    waits = sched.t_bench - sched.scheduled_times
    assert np.all(waits[unclipped] < 1e-9)
