"""Fig. 13 — CIFAR-10: BCRS+OPWA against all baselines.

Four panels (β × CR). Shape claims: OPWA roughly doubles TopK/EFTOPK accuracy
at CR=0.01 (paper: "approximately double"); at CR=0.1 OPWA is comparable to
or better than uncompressed FedAvg; BCRS+OPWA ≥ BCRS everywhere.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, run_comparison, series_text

ALGS = ["fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"]


@pytest.mark.parametrize("beta,cr", [(0.1, 0.01), (0.1, 0.1), (0.5, 0.1), (0.5, 0.01)])
def test_fig13_panel(once, beta, cr):
    base = bench_config("cifar10", "fedavg", beta=beta)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    for alg in ("bcrs_opwa", "topk", "fedavg"):
        emit(
            f"Fig. 13 — cifar10 beta={beta} CR={cr}: {alg}",
            series_text(results[alg], every=10),
        )

    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    # OPWA strictly improves over plain TopK.
    assert acc["bcrs_opwa"] > acc["topk"], acc
    # OPWA improves on BCRS alone (the mask is additive on top of scheduling).
    assert acc["bcrs_opwa"] >= acc["bcrs"] - 0.02, acc
    if cr == 0.01:
        # The paper's headline: OPWA ~doubles TopK accuracy at CR=0.01 and
        # lands within reach of uncompressed FedAvg.
        assert acc["bcrs_opwa"] > 1.3 * acc["topk"], acc
        assert acc["bcrs_opwa"] > acc["fedavg"] - 0.15, acc
