"""Fig. 10 — accuracy vs accumulated communication time (CIFAR-10).

Shape claims: for a fixed accuracy level, BCRS needs far less accumulated
actual communication time than FedAvg (whose x-axis is dominated by dense
straggler uploads); compressed baselines sit between.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, run_comparison

ALGS = ["fedavg", "topk", "eftopk", "bcrs"]


@pytest.mark.parametrize("beta,cr", [(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)])
def test_fig10_accuracy_vs_time(once, beta, cr):
    base = bench_config("cifar10", "fedavg", beta=beta, rounds=50)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    rows = []
    for alg in ALGS:
        t, acc = results[alg].accuracy_vs_time()
        # Sample three points along the curve.
        pts = "  ".join(f"({t[i]:.0f}s, {acc[i]:.2f})" for i in np.linspace(0, len(t) - 1, 3).astype(int))
        rows.append([alg, pts, f"{results[alg].time.actual_total:.0f}s"])
    emit(
        f"Fig. 10 — accuracy vs comm time, beta={beta}, CR={cr}",
        format_table(["algorithm", "curve samples", "total comm"], rows),
    )

    # Time axes: compressed algorithms accumulate far less actual time.
    total = {alg: results[alg].time.actual_total for alg in ALGS}
    assert total["bcrs"] < 0.5 * total["fedavg"], total
    assert total["topk"] < 0.5 * total["fedavg"], total

    # At the time BCRS finishes, it has reached an accuracy FedAvg needs much
    # longer to match (the curves' horizontal separation).
    t_b, acc_b = results["bcrs"].accuracy_vs_time()
    t_f, acc_f = results["fedavg"].accuracy_vs_time()
    reached = float(acc_b[-1])
    fed_time = next((tt for tt, aa in zip(t_f, acc_f) if aa >= reached), None)
    if fed_time is not None:
        assert fed_time > t_b[-1], (fed_time, t_b[-1])
