"""Fig. 9 — CIFAR-100 accuracy-vs-round curves: BCRS vs baselines.

Same panel grid on the 100-class stand-in (crowded label space, low accuracy
ceiling — like real CIFAR-100). Shape claims: curves rise above the 1 %
chance level; severe compression hurts uniform TopK relative to FedAvg.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, run_comparison, series_text

ALGS = ["fedavg", "topk", "eftopk", "bcrs"]
DATASET = "cifar100"


@pytest.mark.parametrize("beta,cr", [(0.1, 0.1), (0.5, 0.1), (0.1, 0.01), (0.5, 0.01)])
def test_fig9_panel(once, beta, cr):
    base = bench_config(DATASET, "fedavg", beta=beta)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    for alg in ALGS:
        emit(
            f"Fig. 9 — {DATASET} beta={beta} CR={cr}: {alg}",
            series_text(results[alg], every=10),
        )

    # FedAvg and BCRS learn beyond the 1 % chance level; at CR=0.01 uniform
    # TopK may stay near chance on 100 classes — exactly the collapse the
    # paper's Fig. 9 shows — so it only needs to clear chance itself.
    for alg in ("fedavg", "bcrs"):
        assert results[alg].best_accuracy() > 0.03, alg
    for alg in ("topk", "eftopk"):
        assert results[alg].best_accuracy() >= 0.01, alg
    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    if cr == 0.01:
        assert acc["topk"] < acc["fedavg"], acc
    # BCRS at least competitive with uniform TopK (paper: above, except one
    # outlier cell the paper itself reports at beta=0.1, CR=0.1).
    assert acc["bcrs"] > acc["topk"] - 0.05, acc
