"""Fig. 6 — time breakdown of one FL round.

Paper bars (per round): compress/decompress ~0.3 s, training ~10 s,
uncompressed communication 48.15 s, BCRS communication 1.14 s (CR=0.01) /
9.78 s (CR=0.1). Shape claims: communication dominates an uncompressed round;
BCRS removes most of it, more at CR=0.01 than CR=0.1; compression overhead is
negligible next to the simulated communication it saves.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table
from repro.experiments.paper_reference import FIG6_BREAKDOWN
from repro.fl import Simulation


#: Paper-scale transmitted volume: the paper's ~48 s dense straggler upload at
#: ~1 Mbit/s implies a ~47 Mbit model message; we price rounds at that volume
#: while training the CPU-sized model (see ExperimentConfig.volume_override_bits).
PAPER_VOLUME_BITS = 4.7e7


def breakdown_for(cr: float) -> dict[str, float]:
    cfg = bench_config(
        "cifar10",
        "bcrs",
        compression_ratio=cr,
        beta=0.1,
        rounds=10,
        volume_override_bits=PAPER_VOLUME_BITS,
    )
    sim = Simulation(cfg)
    sim.run()
    b = sim.history.mean_breakdown()
    return b


@pytest.mark.parametrize("cr", [0.01, 0.1])
def test_fig6_breakdown(once, cr):
    b = once(breakdown_for, cr)
    paper = FIG6_BREAKDOWN[cr]

    rows = [
        ["compress+decompress (wall)", f"{b['compress_s']:.4f}", f"{paper[0]:.2f}"],
        ["local training (wall)", f"{b['train_s']:.4f}", f"{paper[1]:.2f}"],
        ["uncompressed comm (simulated)", f"{b['comm_uncompressed_s']:.2f}", f"{paper[2]:.2f}"],
        ["BCRS comm (simulated)", f"{b['comm_actual_s']:.2f}", f"{paper[3]:.2f}"],
    ]
    emit(
        f"Fig. 6 — average per-round time breakdown, CR={cr}",
        format_table(["phase", "measured (s)", "paper (s)"], rows),
    )

    # Communication dominates the uncompressed round.
    assert b["comm_uncompressed_s"] > b["comm_actual_s"]
    # Compression overhead is negligible next to the communication saved.
    assert b["compress_s"] < 0.1 * (b["comm_uncompressed_s"] - b["comm_actual_s"])


def test_fig6_cr_ordering(once):
    """BCRS round time scales with CR: CR=0.1 rounds cost ~10x CR=0.01 rounds
    (modulo latency), mirroring the paper's 9.78 s vs 1.14 s bars."""
    b001 = once(breakdown_for, 0.01)
    b01 = breakdown_for(0.1)
    assert b01["comm_actual_s"] > 3 * b001["comm_actual_s"]
