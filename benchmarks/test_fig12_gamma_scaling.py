"""Fig. 12 — optimal γ grows with the federation size (N=16, N=20, C=0.5).

Paper: with more selected clients, rarely-retained parameters are diluted by
a larger divisor, so the best enlarge rate moves up roughly in proportion to
|S_t|. Shape claims: OPWA beats uniform TopK at every N, and the best γ in
the sweep is at least |S_t|/2 (small γ is never optimal at CR=0.01).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, run_comparison, sweep

GAMMAS = [2.0, 5.0, 8.0, 11.0, 14.0]


@pytest.mark.parametrize("num_clients", [16, 20])
def test_fig12_gamma_scaling(once, num_clients):
    base = bench_config(
        "cifar10",
        "bcrs_opwa",
        beta=0.1,
        compression_ratio=0.01,
        num_clients=num_clients,
        num_train=1600,
    )
    results = once(sweep, base, "gamma", GAMMAS)
    topk = run_comparison(base, ["topk"], compression_ratio=0.01)["topk"]

    rows = [["topk", f"{topk.final_accuracy():.4f}"]]
    rows += [[f"gamma={int(g)}", f"{results[g].final_accuracy():.4f}"] for g in GAMMAS]
    emit(
        f"Fig. 12 — gamma selection at N={num_clients} (|S_t|={base.clients_per_round})",
        format_table(["run", "final acc"], rows),
    )

    acc = {g: results[g].final_accuracy() for g in GAMMAS}
    best_gamma = max(acc, key=acc.get)
    selected = base.clients_per_round
    # Best OPWA beats uniform TopK.
    assert max(acc.values()) > topk.final_accuracy(), (acc, topk.final_accuracy())
    # The optimum is not at the smallest gamma (dilution needs compensating).
    assert best_gamma >= selected / 2, (best_gamma, selected)
