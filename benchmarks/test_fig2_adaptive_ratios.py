"""Fig. 2 — adaptive ratios retain more information on faster links.

Shape claims: CR_i is non-decreasing in bandwidth B_i (for equal latency);
the slowest client keeps the default ratio; communication time never exceeds
the uniform-compression round length.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.bcrs import schedule_ratios
from repro.experiments import format_table
from repro.network.cost import LinkSpec, model_bits

VOLUME = model_bits(100_000)
CR = 0.02


def schedule_over_bandwidths():
    bws = np.linspace(0.2e6, 4e6, 12)
    links = [LinkSpec(b, 0.08) for b in bws]
    return bws, schedule_ratios(links, VOLUME, CR)


def test_fig2_monotone_ratios(once):
    bws, sched = once(schedule_over_bandwidths)

    rows = [
        [f"{b / 1e6:.2f} Mbit/s", f"{r:.4f}", f"{t:.2f}s"]
        for b, r, t in zip(bws, sched.ratios, sched.scheduled_times)
    ]
    emit(
        "Fig. 2 — scheduled compression ratio vs bandwidth (equal latency)",
        format_table(["bandwidth", "CR_i", "uplink time"], rows),
    )

    # Monotone: more bandwidth, more retained information.
    assert np.all(np.diff(sched.ratios) >= -1e-12)
    # Slowest client anchors at the default ratio.
    assert sched.ratios[0] == min(sched.ratios)
    assert np.isclose(sched.ratios[0], CR)
    # Nobody exceeds the benchmark round length.
    assert np.all(sched.scheduled_times <= sched.t_bench + 1e-9)
