"""Fig. 15 — SVHN: BCRS+OPWA against all baselines.

Shape claims: OPWA improves over uniform TopK in every panel; at moderate
heterogeneity (β=0.5) all methods score high on the easier dataset, with
compression gaps opening at CR=0.01 — as in the paper's panels.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, run_comparison, series_text, summarize_comparison

ALGS = ["fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"]


@pytest.mark.parametrize("beta,cr", [(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)])
def test_fig15_panel(once, beta, cr):
    base = bench_config("svhn", "fedavg", beta=beta)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    emit(
        f"Fig. 15 — svhn beta={beta} CR={cr}",
        summarize_comparison(results),
    )
    emit(
        f"Fig. 15 — svhn beta={beta} CR={cr}: bcrs_opwa curve",
        series_text(results["bcrs_opwa"], every=10),
    )

    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    assert acc["bcrs_opwa"] > acc["topk"], acc
    if cr == 0.01:
        # Severe compression separates TopK from FedAvg; OPWA narrows it.
        assert acc["topk"] < acc["fedavg"], acc
        assert (acc["fedavg"] - acc["bcrs_opwa"]) < (acc["fedavg"] - acc["topk"]), acc
