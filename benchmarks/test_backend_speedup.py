"""Execution-backend throughput: process pool vs serial on one round shape.

The paper's wall-clock claims (Fig. 10, Table 3) need many simulated rounds;
the execution engine (src/repro/exec/) parallelizes the round's client
training. This bench runs an 8-client full-participation round load on the
serial and process backends, checks the results are bit-identical, and
measures the speedup. The ≥2× speedup claim is asserted only where it can
hold — on a ≥4-core runner (CI); on smaller machines the bench still
verifies equivalence and reports the measured ratio.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit
from repro.experiments import format_table
from repro.fl import ExperimentConfig, Simulation

#: Cores the process pool uses — and the bar for asserting the speedup.
WORKERS = 4


def bench_cfg(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=4800,  # 600 samples/client: enough local work to amortize IPC
        num_test=200,
        num_clients=8,
        participation=1.0,  # the 8-client round of the speedup claim
        rounds=2,
        local_epochs=8,
        batch_size=32,
        algorithm="topk",
        compression_ratio=0.1,
        eval_every=10,  # keep (serial) evaluation out of the timed region
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def timed_run(cfg: ExperimentConfig) -> tuple[float, object]:
    with Simulation(cfg) as sim:
        sim.backend  # build the backend (fork/pool startup) outside the timing
        t0 = time.perf_counter()
        history = sim.run()
        return time.perf_counter() - t0, history


def test_process_backend_speedup(once):
    # Best of two on both sides: a single noisy-neighbor stall on a shared
    # CI runner should not fail the whole tier-1 job on timing alone.
    serial_s, serial_hist = once(timed_run, bench_cfg())
    serial_s = min(serial_s, timed_run(bench_cfg())[0])
    process_s, process_hist = timed_run(bench_cfg(backend="process", workers=WORKERS))
    process_s = min(process_s, timed_run(bench_cfg(backend="process", workers=WORKERS))[0])

    # Parallelism must never change results — only wall-clock time.
    for a, b in zip(serial_hist.records, process_hist.records):
        assert a.train_loss == b.train_loss
        assert a.ratios == b.ratios
        assert a.weights == b.weights

    cores = os.cpu_count() or 1
    speedup = serial_s / process_s
    emit(
        f"Execution backends — 8-client round, {WORKERS} workers, {cores} cores",
        format_table(
            ["backend", "wall (s)", "speedup"],
            [
                ["serial", f"{serial_s:.2f}", "1.00x"],
                ["process", f"{process_s:.2f}", f"{speedup:.2f}x"],
            ],
        ),
    )

    if cores >= 4:
        # 8 clients over 4 workers: ideal 4x; ≥2x leaves room for IPC and
        # the per-round parameter broadcast.
        assert speedup >= 2.0, f"expected >=2x on {cores} cores, got {speedup:.2f}x"
