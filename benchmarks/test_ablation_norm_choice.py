"""Ablation A1 — the Norm() choice in Eq. 6.

The paper normalizes scheduled ratios before comparing them to data
frequencies but does not specify the normalization; we ship three variants.
This ablation runs BCRS with each and reports the impact; the run must not
be pathologically sensitive to the choice (all variants must learn), with
the sum-normalization (our default) at least as good as using raw ratios.
"""

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, sweep

MODES = ["sum", "max", "none"]


def test_ablation_norm_choice(once):
    base = bench_config("cifar10", "bcrs", beta=0.1, compression_ratio=0.01, rounds=40)
    results = once(sweep, base, "norm_mode", MODES)

    rows = [
        [mode, f"{results[mode].final_accuracy():.4f}", f"{results[mode].best_accuracy():.4f}"]
        for mode in MODES
    ]
    emit("Ablation A1 — Eq. 6 Norm() variants (BCRS, beta=0.1, CR=0.01)",
         format_table(["norm mode", "final acc", "best acc"], rows))

    accs = {m: results[m].final_accuracy() for m in MODES}
    for m in MODES:
        assert accs[m] > 0.15, accs  # every variant learns beyond chance
