"""Fig. 5 — Dirichlet label-skew heatmaps across clients (CIFAR-10).

Paper: class×client sample-count matrices for β=0.5 (moderate) and β=0.1
(severe). Shape claims: β=0.1 concentrates classes on few clients (many empty
cells, higher EMD-to-global, lower per-client label entropy) while β=0.5
spreads them; both allocate every sample exactly once.
"""


from benchmarks.conftest import emit
from repro.data.datasets import make_dataset
from repro.data.partition import dirichlet_partition
from repro.data.stats import heatmap_text, mean_emd_to_global, mean_label_entropy


def build_partitions():
    ds = make_dataset("synth-cifar10", 5000, seed=0)
    p05 = dirichlet_partition(ds.y, 10, 0.5, seed=1)
    p01 = dirichlet_partition(ds.y, 10, 0.1, seed=1)
    return ds, p05, p01


def test_fig5_heatmaps(once):
    ds, p05, p01 = once(build_partitions)

    for beta, part in [(0.5, p05), (0.1, p01)]:
        emit(
            f"Fig. 5 — NIID distribution, beta={beta} "
            f"(EMD-to-global {mean_emd_to_global(part):.3f}, "
            f"mean label entropy {mean_label_entropy(part):.3f} nats)",
            heatmap_text(part),
        )

    # Every sample assigned exactly once.
    for part in (p05, p01):
        assert part.sizes().sum() == len(ds)
    # Severity ordering (the figure's visual contrast, quantified).
    assert mean_emd_to_global(p01) > mean_emd_to_global(p05)
    assert mean_label_entropy(p01) < mean_label_entropy(p05)
    # β=0.1 produces more empty class×client cells than β=0.5.
    empty01 = int((p01.counts_matrix() == 0).sum())
    empty05 = int((p05.counts_matrix() == 0).sum())
    assert empty01 > empty05
