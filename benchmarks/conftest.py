"""Shared helpers for the table/figure benchmark suite.

Every bench regenerates one paper artifact at CPU scale and prints measured
numbers next to the paper's (visible with ``pytest -s`` or in the benchmark
run's captured output). Assertions check the *shape* claims — orderings,
crossovers, rough factors — not absolute values (our substrate is a
synthetic-data simulator; see DESIGN.md §2/§4).
"""

from __future__ import annotations

import sys

import pytest


#: Result blocks accumulated during the run; flushed into the terminal
#: summary so the regenerated tables/figures appear in the bench log even
#: under pytest's fd-level capture — the bench output *is* the artifact.
_BLOCKS: list[tuple[str, str]] = []


def emit(title: str, body: str) -> None:
    """Record a labelled result block (also printed live with ``-s``)."""
    _BLOCKS.append((title, body))
    print(f"\n================ {title} ================", file=sys.stderr)
    print(body, file=sys.stderr)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every emitted artifact after the test summary."""
    if not _BLOCKS:
        return
    tw = terminalreporter
    tw.section("regenerated paper artifacts (paper vs measured)")
    for title, body in _BLOCKS:
        tw.write_line("")
        tw.write_line(f"================ {title} ================")
        for line in body.splitlines():
            tw.write_line(line)


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Simulation runs are deterministic and expensive; a single measured
    iteration is the honest cost of regenerating the artifact.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
