"""Fig. 4 — distribution of the degree of overlap of retained parameters.

Paper: histograms over frequency-of-occurrence 1..5 for β ∈ {0.1, 0.5} ×
CR ∈ {0.01, 0.1}; ~87–88 % singletons at CR=0.01, ~59–61 % at CR=0.1.
Shape claims: singletons dominate, more severely at CR=0.01 than CR=0.1, and
the histogram is monotonically decreasing in the overlap degree.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.compression.base import SparseUpdate
from repro.core.overlap import overlap_distribution
from repro.experiments import bench_config, format_table
from repro.experiments.paper_reference import FIG4_SINGLETON_FRACTIONS
from repro.fl import Simulation


def round_distribution(beta: float, cr: float):
    cfg = bench_config("cifar10", "topk", beta=beta, compression_ratio=cr, rounds=3)
    sim = Simulation(cfg)
    sim.run()
    updates = [u for u in sim.last_round_updates if isinstance(u, SparseUpdate)]
    return overlap_distribution(updates)


@pytest.mark.parametrize("beta", [0.1, 0.5])
def test_fig4_overlap_histograms(once, beta):
    dist_001 = once(round_distribution, beta, 0.01)
    dist_01 = round_distribution(beta, 0.1)

    for cr, dist in [(0.01, dist_001), (0.1, dist_01)]:
        rows = [
            [str(f + 1), str(int(c)), f"{frac:.2%}"]
            for f, (c, frac) in enumerate(zip(dist.counts, dist.fractions()))
        ]
        paper = FIG4_SINGLETON_FRACTIONS[(beta, cr)]
        emit(
            f"Fig. 4 — overlap distribution, beta={beta}, CR={cr} "
            f"(singletons: measured {dist.singleton_fraction():.2%}, paper {paper:.2%})",
            format_table(["degree", "#params", "share"], rows),
        )

    # Shape claim 1: singleton-dominated at both compression levels.
    assert dist_001.singleton_fraction() > 0.5
    # Shape claim 2: severity grows with compression (0.01 ≥ 0.1 case).
    assert dist_001.singleton_fraction() > dist_01.singleton_fraction()
    # Shape claim 3: histogram decreasing in overlap degree (Fig. 4 panels).
    assert np.all(np.diff(dist_001.counts.astype(float)) <= 0)
