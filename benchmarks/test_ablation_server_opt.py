"""Ablation A5 — server optimizers composed with BCRS+OPWA.

The FedOpt family (the paper's related work [39]) treats the aggregated
update as a pseudo-gradient. This ablation checks that BCRS+OPWA composes
with FedAvgM and FedAdam: all variants learn, and server momentum does not
destroy the OPWA gains.
"""

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table
from repro.fl import Simulation

# Momentum variants scale the server LR by (1 − m): the momentum sum
# amplifies the step by 1/(1 − m), and OPWA's γ already enlarges sparse
# updates — unscaled m=0.9 visibly diverges (itself a useful datapoint).
VARIANTS = [
    ("plain (Alg. 1)", dict()),
    ("FedAvgM m=0.5", dict(server_momentum=0.5, server_step=0.5)),
    ("FedAvgM m=0.9", dict(server_momentum=0.9, server_step=0.1)),
    ("FedAdam lr=0.03", dict(server_optimizer="adam", server_step=0.03)),
]


def run_all():
    out = {}
    for label, overrides in VARIANTS:
        cfg = bench_config(
            "cifar10", "bcrs_opwa", beta=0.1, compression_ratio=0.05, rounds=40, **overrides
        )
        out[label] = Simulation(cfg).run()
    return out


def test_ablation_server_optimizers(once):
    results = once(run_all)

    rows = [
        [label, f"{h.final_accuracy():.4f}", f"{h.best_accuracy():.4f}"]
        for label, h in results.items()
    ]
    emit("Ablation A5 — server optimizers on BCRS+OPWA (beta=0.1, CR=0.05)",
         format_table(["server optimizer", "final acc", "best acc"], rows))

    for label, h in results.items():
        assert h.final_accuracy() > 0.3, (label, h.final_accuracy())
