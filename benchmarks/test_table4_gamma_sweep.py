"""Table 4 — OPWA accuracy as a function of the enlarge rate γ.

Paper: γ ∈ {3, 5, 7} across β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01} on CIFAR-10.
Shape claim: at severe compression (CR=0.01) larger γ within the swept range
helps — the optimum is near or above |S_t| (5 selected clients here), i.e.
γ=5/7 beat γ=3.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, sweep
from repro.experiments.paper_reference import TABLE4

GAMMAS = [3.0, 5.0, 7.0]


@pytest.mark.parametrize("beta,cr", [(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)])
def test_table4_gamma(once, beta, cr):
    base = bench_config("cifar10", "bcrs_opwa", beta=beta, compression_ratio=cr)
    results = once(sweep, base, "gamma", GAMMAS)

    rows = [
        [f"gamma={int(g)}", f"{results[g].final_accuracy():.4f}", f"{TABLE4[(beta, cr)][int(g)]:.4f}"]
        for g in GAMMAS
    ]
    emit(
        f"Table 4 — OPWA gamma sweep, beta={beta}, CR={cr}",
        format_table(["enlarge rate", "measured", "paper"], rows),
    )

    acc = {g: results[g].final_accuracy() for g in GAMMAS}
    # Shape claim: at CR=0.01 the best gamma in the sweep is >= 5 (paper: 7).
    if cr == 0.01:
        best = max(acc, key=acc.get)
        assert best >= 5.0, acc
