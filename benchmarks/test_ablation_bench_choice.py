"""Ablation A3 — BCRS benchmark rule: slowest client vs median client.

Algorithm 2 anchors the round at the *slowest* client's default-ratio time.
A median benchmark shortens rounds (clients slower than the median keep CR*
and simply finish late... except they don't: the round still waits for them
at CR*, so actual time matches the max rule) but schedules less extra data
for fast clients. This ablation quantifies the trade-off.
"""

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, sweep

RULES = ["max", "median"]


def test_ablation_benchmark_rule(once):
    base = bench_config("cifar10", "bcrs", beta=0.1, compression_ratio=0.01, rounds=40)
    results = once(sweep, base, "benchmark", RULES)

    rows = []
    for rule in RULES:
        h = results[rule]
        mean_ratio = sum(sum(r.ratios) / len(r.ratios) for r in h.records) / len(h.records)
        rows.append([
            rule,
            f"{h.final_accuracy():.4f}",
            f"{h.time.actual_total:.1f}s",
            f"{mean_ratio:.4f}",
        ])
    emit("Ablation A3 — BCRS benchmark rule (beta=0.1, CR=0.01)",
         format_table(["rule", "final acc", "comm time", "mean realized CR"], rows))

    # The max rule schedules at least as much data per round as the median
    # rule (its benchmark window is the widest).
    def mean_cr(h):
        return sum(sum(r.ratios) / len(r.ratios) for r in h.records) / len(h.records)

    assert mean_cr(results["max"]) >= mean_cr(results["median"]) - 1e-9
    for rule in RULES:
        assert results[rule].final_accuracy() > 0.15
