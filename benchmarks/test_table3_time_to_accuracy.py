"""Table 3 — communication time to reach the target accuracy (CIFAR-10, β=0.1).

Paper: seconds of accumulated Actual/Max/Min communication time until 40 %
test accuracy. Shape claims: compressed algorithms reach the target in a
small fraction of FedAvg's Actual time; BCRS is fastest; the Max−Min gap
shows how much straggler waiting a perfect scheduler removes; the abstract's
2.02–3.37× speedup of BCRS over TopK holds as BCRS ≥ TopK here.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, format_table, run_comparison, time_to_accuracy_row
from repro.experiments.paper_reference import SPEEDUP_RANGE, TABLE3

TARGET = 0.40
ALGS = ["fedavg", "topk", "eftopk", "bcrs"]


@pytest.mark.parametrize("cr", [0.1, 0.01])
def test_table3_time_to_target(once, cr):
    base = bench_config("cifar10", "fedavg", beta=0.1, rounds=60)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    rows = [
        time_to_accuracy_row(alg, results[alg], TARGET, paper=TABLE3[alg][cr])
        for alg in ALGS
    ]
    emit(
        f"Table 3 — time (s) to {TARGET:.0%} accuracy, CIFAR-10 beta=0.1, CR={cr}",
        format_table(
            ["algorithm", "actual", "max", "min", "paper_actual"], rows
        ),
    )

    t = {alg: results[alg].time_to_accuracy(TARGET) for alg in ALGS}
    for alg in ALGS:
        assert t[alg]["actual"] is not None, f"{alg} never reached {TARGET}"
    # Shape claim 1: every compressed algorithm beats FedAvg's actual time.
    for alg in ("topk", "eftopk", "bcrs"):
        assert t[alg]["actual"] < t["fedavg"]["actual"], t
    # Shape claim 2: BCRS reaches the target at least as fast as uniform TopK
    # (the paper reports a 2.02–3.37x speedup).
    assert t["bcrs"]["actual"] <= t["topk"]["actual"] * 1.05, t
    speedup = t["topk"]["actual"] / t["bcrs"]["actual"]
    emit(
        f"BCRS speedup over TopK (CR={cr})",
        f"measured {speedup:.2f}x   paper reports {SPEEDUP_RANGE[0]}–{SPEEDUP_RANGE[1]}x",
    )
    # Shape claim 3: the straggler gap is real — over the whole run the
    # accumulated straggler (Max) time clearly exceeds the fastest-client
    # (Min) time. (The paper's 35x gap comes from un-floored bandwidth
    # sampling producing near-zero outliers; our floored sampler gives a
    # smaller but still decisive gap.)
    acc_time = results["fedavg"].time
    assert acc_time.max_total > 1.2 * acc_time.min_total, (
        acc_time.max_total,
        acc_time.min_total,
    )
