"""Fig. 14 — CIFAR-100: BCRS+OPWA against all baselines.

Shape claims on the 100-class stand-in: OPWA improves over uniform TopK in
every panel and closes most of the FedAvg gap at severe compression.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, run_comparison, series_text, summarize_comparison

ALGS = ["fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"]


@pytest.mark.parametrize("beta,cr", [(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)])
def test_fig14_panel(once, beta, cr):
    base = bench_config("cifar100", "fedavg", beta=beta)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    emit(
        f"Fig. 14 — cifar100 beta={beta} CR={cr}",
        summarize_comparison(results),
    )
    emit(
        f"Fig. 14 — cifar100 beta={beta} CR={cr}: bcrs_opwa curve",
        series_text(results["bcrs_opwa"], every=10),
    )

    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    # OPWA over TopK with a noise margin suited to the low-accuracy regime.
    assert acc["bcrs_opwa"] > acc["topk"] - 0.01, acc
    if cr == 0.01:
        gap_opwa = acc["fedavg"] - acc["bcrs_opwa"]
        gap_topk = acc["fedavg"] - acc["topk"]
        assert gap_opwa < gap_topk, acc
