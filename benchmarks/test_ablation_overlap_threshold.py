"""Ablation A2 — the OPWA required-overlap threshold D.

Algorithm 3 defaults to D=1 (enlarge only parameters retained by a single
client). Raising D enlarges progressively more of the model, converging on a
global learning-rate boost rather than a targeted correction. This ablation
sweeps D and reports accuracy plus how much of the model each D enlarges.
"""


from benchmarks.conftest import emit
from repro.compression.base import SparseUpdate
from repro.core.opwa import opwa_mask_from_updates
from repro.experiments import bench_config, format_table, sweep
from repro.fl import Simulation

DS = [1, 2, 3]


def test_ablation_overlap_threshold(once):
    base = bench_config("cifar10", "bcrs_opwa", beta=0.1, compression_ratio=0.01, rounds=40)
    results = once(sweep, base, "required_overlap", DS)

    # Measure the enlarged share for each D on a fresh round's updates.
    sim = Simulation(base)
    sim.run_round()
    updates = [u for u in sim.last_round_updates if isinstance(u, SparseUpdate)]
    shares = {}
    for d in DS:
        mask = opwa_mask_from_updates(updates, gamma=base.gamma, required_overlap=d)
        shares[d] = float((mask > 1).mean())

    rows = [
        [f"D={d}", f"{results[d].final_accuracy():.4f}", f"{shares[d]:.2%}"]
        for d in DS
    ]
    emit("Ablation A2 — OPWA threshold D (beta=0.1, CR=0.01)",
         format_table(["threshold", "final acc", "model share enlarged"], rows))

    # Larger D enlarges a (weakly) larger share of parameters.
    assert shares[1] <= shares[2] <= shares[3]
    # All variants learn.
    for d in DS:
        assert results[d].final_accuracy() > 0.2
