"""Ablation A4 — straggler policies: BCRS adaptation vs deadline dropping.

Two ways to stop waiting for the slowest uplink: BCRS keeps every client and
adapts ratios; a deadline policy drops clients that miss a time quantile.
Shape claims: the deadline policy buys shorter rounds but BCRS converts the
same heterogeneity into *more information* and reaches higher accuracy —
dropping non-IID clients discards exactly the unique data FL exists to use.
"""

from benchmarks.conftest import emit
from repro.experiments import accuracy_auc, bench_config, format_table, run_comparison

ALGS = ["topk", "deadline_topk", "bcrs", "bcrs_opwa"]


def test_ablation_deadline_vs_bcrs(once):
    base = bench_config("cifar10", "fedavg", beta=0.1, rounds=40)
    results = once(run_comparison, base, ALGS, compression_ratio=0.05)

    rows = []
    for alg in ALGS:
        h = results[alg]
        rows.append([
            alg,
            f"{h.final_accuracy():.4f}",
            f"{accuracy_auc(h):.4f}",
            f"{h.time.actual_total:.1f}s",
        ])
    emit("Ablation A4 — straggler policies (beta=0.1, CR=0.05)",
         format_table(["policy", "final acc", "AUC", "comm time"], rows))

    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    # Deadline dropping shortens rounds...
    assert results["deadline_topk"].time.actual_total < results["topk"].time.actual_total
    # ...but the paper's adaptive approach wins on accuracy.
    assert acc["bcrs_opwa"] > acc["deadline_topk"], acc
