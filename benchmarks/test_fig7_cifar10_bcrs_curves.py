"""Fig. 7 — CIFAR-10 accuracy-vs-round curves: BCRS vs baselines.

Four panels: β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}, algorithms FedAvg / TOPK /
EFTOPK / BCRS. Shape claims: all curves rise; at CR=0.01 TopK converges far
below FedAvg while BCRS converges above TopK.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import bench_config, run_comparison, series_text

ALGS = ["fedavg", "topk", "eftopk", "bcrs"]
DATASET = "cifar10"


@pytest.mark.parametrize("beta,cr", [(0.1, 0.1), (0.5, 0.1), (0.1, 0.01), (0.5, 0.01)])
def test_fig7_panel(once, beta, cr):
    base = bench_config(DATASET, "fedavg", beta=beta)
    results = once(run_comparison, base, ALGS, compression_ratio=cr)

    for alg in ALGS:
        emit(
            f"Fig. 7 — {DATASET} beta={beta} CR={cr}: {alg}",
            series_text(results[alg], every=10),
        )

    # Curves rise: final beats the first evaluation for every algorithm.
    for alg in ALGS:
        _, accs = results[alg].accuracy_series()
        assert accs[-1] > accs[0], alg
    # Panel-level orderings.
    acc = {alg: results[alg].final_accuracy() for alg in ALGS}
    if cr == 0.01:
        assert acc["topk"] < acc["fedavg"], acc
        assert acc["bcrs"] > acc["topk"], acc
