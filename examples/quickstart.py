#!/usr/bin/env python
"""Quickstart: run BCRS+OPWA against FedAvg/TopK on a small federation.

Builds the paper's setting (10 clients, 50 % participation, Dirichlet
label skew, heterogeneous 1 Mbit/s-class links), runs three algorithms with
identical seeds, and prints final accuracy and accumulated communication
time — the essence of Table 2 / Table 3 in one minute on a laptop.

Run:  python examples/quickstart.py
"""

from repro.experiments import bench_config, run_comparison, summarize_comparison

def main() -> None:
    base = bench_config(
        "cifar10",
        "fedavg",
        beta=0.1,  # severe non-IID, the paper's hard setting
        rounds=30,
    )
    print(f"dataset={base.dataset}  clients={base.num_clients}  "
          f"C={base.participation}  beta={base.beta}  rounds={base.rounds}\n")

    results = run_comparison(
        base,
        ["fedavg", "topk", "bcrs", "bcrs_opwa"],
        compression_ratio=0.05,
    )
    print(summarize_comparison(results))

    fedavg_t = results["fedavg"].time.actual_total
    bcrs_t = results["bcrs_opwa"].time.actual_total
    print(f"\nBCRS+OPWA used {bcrs_t:.1f}s of uplink vs FedAvg's {fedavg_t:.1f}s "
          f"({fedavg_t / bcrs_t:.1f}x less communication).")


if __name__ == "__main__":
    main()
