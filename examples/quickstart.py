#!/usr/bin/env python
"""Quickstart: run BCRS+OPWA against FedAvg/TopK on a small federation.

Builds the paper's setting (10 clients, 50 % participation, Dirichlet
label skew, heterogeneous 1 Mbit/s-class links), runs three algorithms with
identical seeds, and prints final accuracy and accumulated communication
time — the essence of Table 2 / Table 3 in one minute on a laptop.

Run:  python examples/quickstart.py [--backend serial|thread|process]
                                    [--workers N] [--rounds N]
                                    [--mode sync|semisync|async]

The backend changes only wall-clock time: seeded results are bit-identical
on every backend (see src/repro/exec/). The mode changes *when* client
work lands on the virtual clock (see src/repro/simtime/): try
``--mode async`` for FedBuff-style buffered aggregation with no round
barrier.
"""

import argparse

from repro.experiments import bench_config, run_comparison, summarize_comparison
from repro.fl.config import BACKENDS, MODES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="serial", choices=BACKENDS,
                        help="execution backend for the round's client work")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for thread/process backends")
    parser.add_argument("--mode", default="sync", choices=MODES,
                        help="round protocol on the virtual clock")
    parser.add_argument("--rounds", type=int, default=30)
    args = parser.parse_args()

    base = bench_config(
        "cifar10",
        "fedavg",
        beta=0.1,  # severe non-IID, the paper's hard setting
        rounds=args.rounds,
        backend=args.backend,
        workers=args.workers,
        mode=args.mode,
    )
    print(f"dataset={base.dataset}  clients={base.num_clients}  "
          f"C={base.participation}  beta={base.beta}  rounds={base.rounds}  "
          f"backend={base.backend}  mode={base.mode}\n")

    results = run_comparison(
        base,
        ["fedavg", "topk", "bcrs", "bcrs_opwa"],
        compression_ratio=0.05,
    )
    print(summarize_comparison(results))

    fedavg_t = results["fedavg"].time.actual_total
    bcrs_t = results["bcrs_opwa"].time.actual_total
    print(f"\nBCRS+OPWA used {bcrs_t:.1f}s of uplink vs FedAvg's {fedavg_t:.1f}s "
          f"({fedavg_t / bcrs_t:.1f}x less communication).")


if __name__ == "__main__":
    main()
