#!/usr/bin/env python
"""Straggler scenario: what BCRS buys when one client is on a bad link.

The paper's motivation (Fig. 1): under synchronous FedAvg everyone waits for
the slowest uplink. This example builds an explicit 5-client star with one
10x-slower straggler, shows the per-round schedule BCRS computes
(Algorithm 2), and contrasts waiting time under uniform vs adaptive
compression.

Run:  python examples/straggler_scenario.py
"""

import numpy as np

from repro.core.bcrs import schedule_ratios
from repro.experiments import format_table
from repro.network.cost import LinkSpec, model_bits, sparse_uplink_time

def main() -> None:
    # Four healthy clients and one straggler on a 0.1 Mbit/s uplink.
    links = [
        LinkSpec(bandwidth_bps=2.0e6, latency_s=0.06),
        LinkSpec(bandwidth_bps=1.5e6, latency_s=0.09),
        LinkSpec(bandwidth_bps=1.0e6, latency_s=0.12),
        LinkSpec(bandwidth_bps=0.8e6, latency_s=0.10),
        LinkSpec(bandwidth_bps=0.1e6, latency_s=0.20),  # the straggler
    ]
    volume = model_bits(100_000)  # a 100k-parameter model
    default_cr = 0.05

    sched = schedule_ratios(links, volume, default_cr)

    rows = []
    for i, link in enumerate(links):
        uniform_t = sparse_uplink_time(link, volume, default_cr)
        rows.append([
            f"client {i}" + ("  <- straggler" if i == sched.benchmark_index else ""),
            f"{link.bandwidth_bps / 1e6:.2f} Mbit/s",
            f"{uniform_t:.2f}s",
            f"{sched.ratios[i]:.3f}",
            f"{sched.scheduled_times[i]:.2f}s",
        ])
    print(format_table(
        ["client", "bandwidth", "uniform CR time", "BCRS ratio", "BCRS time"], rows
    ))

    waiting_uniform = float(np.sum(sched.t_bench - sched.default_times))
    print(f"\nBenchmark T_bench = {sched.t_bench:.2f}s (slowest client at CR*={default_cr})")
    print(f"Waiting time under uniform compression: {waiting_uniform:.2f}s per round")
    print(f"BCRS converts that into {sched.ratios.sum() / (default_cr * len(links)):.1f}x "
          f"more transmitted parameters at the same round length.")


if __name__ == "__main__":
    main()
