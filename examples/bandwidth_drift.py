#!/usr/bin/env python
"""Extension scenario: BCRS under time-varying bandwidth.

The paper samples each client's bandwidth once. Real edge links drift, so
this example enables the engine's mean-reverting bandwidth model and checks
that BCRS's per-round rescheduling keeps its advantage when the link
landscape changes every round — the robustness case for adaptive over static
ratio assignment.

Run:  python examples/bandwidth_drift.py
"""

from repro.experiments import bench_config, format_table
from repro.fl import Simulation

def main() -> None:
    rows = []
    for volatility in (0.0, 0.2, 0.5):
        for alg in ("topk", "bcrs_opwa"):
            cfg = bench_config(
                "cifar10",
                alg,
                beta=0.1,
                compression_ratio=0.05,
                rounds=30,
                time_varying_links=volatility > 0,
                link_volatility=volatility,
            )
            h = Simulation(cfg).run()
            rows.append([
                f"{volatility:.1f}",
                alg,
                f"{h.final_accuracy():.4f}",
                f"{h.time.actual_total:.1f}s",
            ])
    print(format_table(["link volatility", "algorithm", "final acc", "comm time"], rows))
    print("\nBCRS reschedules ratios each round from the *current* links, so its")
    print("advantage over uniform Top-K persists as volatility grows.")


if __name__ == "__main__":
    main()
