#!/usr/bin/env python
"""Server-free FL: sparsified gossip averaging on a ring vs a denser graph.

The paper's related work (GossipFL, decentralized sparsified learning)
removes the central server entirely: clients train locally and exchange
Top-K-compressed updates with graph neighbors. This example runs D-PSGD on
a ring and on a random 3-regular graph, showing how topology density trades
communication for consensus speed.

Run:  python examples/decentralized_gossip.py
"""

from repro.experiments import bench_config, format_table
from repro.fl.decentralized import DecentralizedSimulation, random_regular_edges, ring_edges

def main() -> None:
    cfg = bench_config(
        "cifar10", "topk", beta=0.5, compression_ratio=0.1, rounds=20,
    ).with_(num_clients=8, eval_every=20)

    rows = []
    for label, edges in [
        ("ring (degree 2)", ring_edges(8)),
        ("random 3-regular", random_regular_edges(8, 3, seed=0)),
    ]:
        sim = DecentralizedSimulation(cfg, edges=edges)
        recs = sim.run()
        rows.append([
            label,
            f"{recs[-1].mean_accuracy:.4f}",
            f"{sim.consensus_distance():.3f}",
            f"{sum(r.comm_time for r in recs):.1f}s",
        ])
    print(format_table(
        ["topology", "mean client accuracy", "consensus distance", "total comm"], rows
    ))
    print("\nDenser graphs mix faster (lower consensus distance) at higher")
    print("communication cost — the decentralized analogue of the paper's")
    print("bandwidth/information trade-off.")


if __name__ == "__main__":
    main()
