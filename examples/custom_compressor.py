#!/usr/bin/env python
"""Extending the framework: plug a custom compressor into the FL loop.

The paper positions its framework as "a versatile foundation for future
cross-device, communication-efficient FL research". This example registers a
new compressor — Top-K applied per layer rather than globally — and runs it
through the standard engine, comparing against global Top-K.

Run:  python examples/custom_compressor.py
"""

import numpy as np

from repro.compression.base import SparseUpdate
from repro.compression.registry import available_compressors, register_compressor
from repro.compression.sparsifiers import k_from_ratio
from repro.experiments import bench_config, format_table
from repro.fl import Simulation
from repro.fl.algorithms import TopKAlgorithm


class BlockTopK:
    """Top-K applied independently to fixed-size blocks of the update.

    Guarantees every region of the model keeps some updates — a cheap proxy
    for per-layer Top-K that avoids starving small layers.
    """

    name = "block_topk"

    def __init__(self, block_size: int = 2048):
        self.block_size = int(block_size)

    def compress(self, update: np.ndarray, ratio: float) -> SparseUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        pieces = []
        for start in range(0, d, self.block_size):
            block = update[start : start + self.block_size]
            k = k_from_ratio(block.shape[0], ratio)
            if k >= block.shape[0]:
                local = np.arange(block.shape[0])
            else:
                local = np.argpartition(np.abs(block), block.shape[0] - k)[block.shape[0] - k :]
            pieces.append(np.sort(local) + start)
        idx = np.concatenate(pieces).astype(np.int64)
        return SparseUpdate(dense_size=d, indices=idx, values=update[idx])


class BlockTopKAlgorithm(TopKAlgorithm):
    """Uniform-ratio FedAvg using the custom compressor."""

    name = "topk"  # reuse the topk plan (uniform ratios, f-weights)
    compressor_name = "block_topk"


def main() -> None:
    register_compressor("block_topk", lambda seed=0: BlockTopK())
    print("registered compressors:", ", ".join(available_compressors()))

    rows = []
    for label, algo_cls in [("global topk", TopKAlgorithm), ("block topk", BlockTopKAlgorithm)]:
        cfg = bench_config("cifar10", "topk", beta=0.1, compression_ratio=0.02, rounds=25)
        sim = Simulation(cfg)
        sim.algorithm = algo_cls(cfg)
        if algo_cls.compressor_name == "block_topk":
            sim.compressors = [BlockTopK() for _ in range(cfg.num_clients)]
        h = sim.run()
        rows.append([label, f"{h.final_accuracy():.4f}", f"{h.time.actual_total:.1f}s"])
    print(format_table(["compressor", "final accuracy", "comm time"], rows))


if __name__ == "__main__":
    main()
