#!/usr/bin/env python
"""Overlap analysis: reproduce the paper's Fig. 3/4 insight on live updates.

Runs one real federated round under Top-K compression, computes the degree of
overlap of every retained parameter across the selected clients, and prints
the distribution histogram — showing that at high compression most retained
parameters appear in only ONE client's update, which motivates OPWA's
enlarge-rate mask (Algorithm 3).

Run:  python examples/overlap_analysis.py
"""

from repro.compression.base import SparseUpdate
from repro.core.opwa import opwa_mask_from_updates
from repro.core.overlap import overlap_distribution
from repro.experiments import bench_config, format_table
from repro.fl import Simulation

def main() -> None:
    for cr in (0.1, 0.01):
        cfg = bench_config("cifar10", "topk", beta=0.1, compression_ratio=cr, rounds=3)
        sim = Simulation(cfg)
        sim.run()
        updates = [u for u in sim.last_round_updates if isinstance(u, SparseUpdate)]
        dist = overlap_distribution(updates)

        rows = [
            [f"{f + 1}", f"{count}", f"{frac:.2%}"]
            for f, (count, frac) in enumerate(zip(dist.counts, dist.fractions()))
        ]
        print(f"\n=== CR = {cr}  ({len(updates)} clients, "
              f"{dist.total_retained} distinct retained indices) ===")
        print(format_table(["overlap degree", "#parameters", "share"], rows))
        print(f"singleton fraction: {dist.singleton_fraction():.2%} "
              f"(paper reports ~59% at CR=0.1, ~87% at CR=0.01)")

        mask = opwa_mask_from_updates(updates, gamma=7.0)
        enlarged = int((mask > 1).sum())
        print(f"OPWA mask with gamma=7 would enlarge {enlarged} parameters "
              f"({enlarged / mask.size:.2%} of the model).")


if __name__ == "__main__":
    main()
