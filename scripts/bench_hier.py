#!/usr/bin/env python
"""Benchmark the hierarchical protocol: throughput + virtual
time-to-target-accuracy vs. the edge-tier width, written to
``BENCH_hier.json``.

Runs one seeded config per ``num_edges`` value (default 1, 4, 16 over a
32-client federation — 1 edge with the default free backhaul is the flat
baseline by the degenerate-equivalence contract) and measures

- ``rounds_per_sec``: wall-clock simulator throughput, and
- ``virtual_time_to_target``: when the topology first reached the target
  accuracy on the virtual clock — what widening the edge tier buys or
  costs once backhaul transfers are priced,

so the hierarchy's perf trajectory is tracked by a CI artifact alongside
``bench_modes.py``. Usage::

    PYTHONPATH=src python scripts/bench_hier.py [--rounds N] [--edges 1,4,16]
        [--target-acc A] [--backhaul-mbps M] [--backend serial|thread|process]
        [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.experiments.presets import bench_config
from repro.fl.config import BACKENDS
from repro.simtime import make_simulation


def bench_edges(base, num_edges: int, target: float) -> dict:
    cfg = base.with_(mode="hier", num_edges=num_edges)
    t0 = time.perf_counter()
    with make_simulation(cfg) as sim:
        history = sim.run()
    wall = time.perf_counter() - t0
    backhaul = [
        max(e.backhaul_s for e in r.edge_breakdown)
        for r in history.records
        if r.edge_breakdown
    ]
    return {
        "num_edges": num_edges,
        "rounds": len(history),
        "wall_seconds": round(wall, 3),
        "rounds_per_sec": round(len(history) / wall, 3),
        "final_accuracy": round(history.final_accuracy(), 4),
        "best_accuracy": round(history.best_accuracy(), 4),
        "virtual_time_total": round(history.records[-1].sim_end, 3),
        "virtual_time_to_target": (
            None
            if (t := history.simtime_to_accuracy(target)) is None
            else round(t, 3)
        ),
        "mean_backhaul_s": round(sum(backhaul) / len(backhaul), 4) if backhaul else 0.0,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--edges", default="1,4,16")
    parser.add_argument("--num-clients", type=int, default=32)
    parser.add_argument("--target-acc", type=float, default=0.25)
    parser.add_argument("--edge-rounds", type=int, default=1)
    parser.add_argument("--backhaul-mbps", type=float, default=100.0)
    parser.add_argument("--backhaul-latency", type=float, default=0.01)
    parser.add_argument("--backend", default="serial", choices=BACKENDS)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_hier.json")
    args = parser.parse_args()

    edge_counts = [int(v) for v in args.edges.split(",") if v.strip()]
    base = bench_config(
        "cifar10",
        "bcrs_opwa",
        compression_ratio=0.1,
        rounds=args.rounds,
        num_clients=args.num_clients,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
        edge_rounds=args.edge_rounds,
        backhaul_bandwidth_mbps=args.backhaul_mbps,
        backhaul_latency_s=args.backhaul_latency,
    )
    results = [bench_edges(base, e, args.target_acc) for e in edge_counts]
    payload = {
        "config": {
            "dataset": base.dataset,
            "algorithm": base.algorithm,
            "rounds": base.rounds,
            "num_clients": base.num_clients,
            "edge_rounds": base.edge_rounds,
            "backhaul_bandwidth_mbps": base.backhaul_bandwidth_mbps,
            "backhaul_latency_s": base.backhaul_latency_s,
            "compression_ratio": base.compression_ratio,
            "target_accuracy": args.target_acc,
            "backend": base.backend,
            "seed": base.seed,
        },
        "edge_sweep": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for r in results:
        print(
            f"edges={r['num_edges']:>3}: {r['rounds_per_sec']:6.2f} rounds/s wall, "
            f"virtual {r['virtual_time_total']:8.1f}s total, "
            f"backhaul {r['mean_backhaul_s']:.3f}s/round, "
            f"to acc>={args.target_acc:g}: {r['virtual_time_to_target']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
