"""Regenerate the robustness golden histories in ``tests/goldens``.

Run from the repo root::

    PYTHONPATH=src python scripts/regen_goldens.py

Each golden is the deterministic serial trace of one
``robust_golden_configs.ROBUST_GOLDEN_CONFIGS`` entry, captured through
the shared :mod:`repro.testing.goldens` harness — the same capture the
test suite replays on every backend. Rerun this after any *intentional*
change to sampling, training, compression, aggregation, fault injection,
or virtual-time pricing, and review the JSON diff like any other code
change.

(The population goldens in ``tests/population/goldens`` are *not*
touched: those are frozen pre-refactor artifacts that cannot be rebuilt
from this tree.)
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "goldens"
sys.path.insert(0, str(GOLDEN_DIR))

from robust_golden_configs import ROBUST_GOLDEN_CONFIGS, golden_name  # noqa: E402

from repro.testing.goldens import run_trace, write_golden  # noqa: E402


def main() -> None:
    for name, config in ROBUST_GOLDEN_CONFIGS.items():
        out = GOLDEN_DIR / golden_name(name)
        write_golden(out, run_trace(config.with_(backend="serial")))
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
