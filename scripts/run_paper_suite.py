#!/usr/bin/env python
"""Run the full Table 2 grid at the paper's budget (200 rounds, Sec. 5.1).

This is the long-form counterpart of the bench suite: 5 algorithms × 3
datasets × 2 β × 2 CR at paper scale (≈30–60 min on CPU). Results are
printed as they land and written to ``paper_suite_results.json``.

Usage:
    python scripts/run_paper_suite.py [--rounds N] [--out PATH]
                                      [--backend serial|thread|process] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.experiments import paper_config
from repro.experiments.paper_reference import TABLE2
from repro.fl.config import BACKENDS
from repro.fl.simulation import Simulation

ALGS = ["fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"]
SETTINGS = [(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)]
DATASETS = ["cifar10", "svhn", "cifar100"]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--out", default="paper_suite_results.json")
    parser.add_argument("--backend", default="serial", choices=BACKENDS,
                        help="execution backend (results are backend-invariant)")
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()

    results: dict[str, dict] = {}
    t_start = time.perf_counter()
    for dataset in DATASETS:
        for beta, cr in SETTINGS:
            for alg in ALGS:
                cfg = paper_config(
                    dataset, alg, beta=beta, compression_ratio=cr, rounds=args.rounds,
                    backend=args.backend, workers=args.workers,
                )
                t0 = time.perf_counter()
                with Simulation(cfg) as sim:
                    h = sim.run()
                key = f"{dataset}/beta={beta}/cr={cr}/{alg}"
                paper = TABLE2[dataset][(beta, cr)][alg]
                results[key] = {
                    "final_accuracy": h.final_accuracy(),
                    "best_accuracy": h.best_accuracy(),
                    "comm_time_s": h.time.actual_total,
                    "paper_accuracy": paper,
                    "wall_s": time.perf_counter() - t0,
                }
                print(
                    f"{key:55s} acc {h.final_accuracy():.4f} "
                    f"(paper {paper:.4f})  [{results[key]['wall_s']:.0f}s]",
                    flush=True,
                )
    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"\nwrote {args.out} after {(time.perf_counter() - t_start) / 60:.1f} min")


if __name__ == "__main__":
    main()
