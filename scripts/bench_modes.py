#!/usr/bin/env python
"""Benchmark the round protocols: wall-clock throughput + virtual
time-to-target-accuracy per mode, written to ``BENCH_modes.json``.

Runs the quickstart-scale config once per mode (identical seeds — the mode
is the only variable), measures

- ``rounds_per_sec``: wall-clock simulator throughput (how fast the
  machine grinds rounds/aggregations), and
- ``virtual_time_to_target``: when the mode first reached the target
  accuracy on the virtual clock (download + compute + upload) — the
  quantity the event scheduler exists to compare,

so the repository's perf trajectory is tracked by an artifact, not
anecdotes. Usage::

    PYTHONPATH=src python scripts/bench_modes.py [--rounds N]
        [--target-acc A] [--backend serial|thread|process] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.experiments.presets import bench_config
from repro.experiments.runner import PROTOCOL_RACE_MODES
from repro.fl.config import BACKENDS
from repro.simtime import make_simulation


def bench_mode(base, mode: str, target: float) -> dict:
    cfg = base.with_(mode=mode)
    t0 = time.perf_counter()
    with make_simulation(cfg) as sim:
        history = sim.run()
    wall = time.perf_counter() - t0
    return {
        "mode": mode,
        "rounds": len(history),
        "wall_seconds": round(wall, 3),
        "rounds_per_sec": round(len(history) / wall, 3),
        "final_accuracy": round(history.final_accuracy(), 4),
        "best_accuracy": round(history.best_accuracy(), 4),
        "virtual_time_total": round(history.records[-1].sim_end, 3),
        "virtual_time_to_target": (
            None
            if (t := history.simtime_to_accuracy(target)) is None
            else round(t, 3)
        ),
        "mean_staleness": round(
            sum(r.mean_staleness or 0.0 for r in history.records) / len(history), 3
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--target-acc", type=float, default=0.25)
    parser.add_argument("--backend", default="serial", choices=BACKENDS)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_modes.json")
    args = parser.parse_args()

    base = bench_config(
        "cifar10",
        "topk",
        compression_ratio=0.1,
        rounds=args.rounds,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
    )
    results = [bench_mode(base, mode, args.target_acc) for mode in PROTOCOL_RACE_MODES]
    payload = {
        "config": {
            "dataset": base.dataset,
            "algorithm": base.algorithm,
            "rounds": base.rounds,
            "num_clients": base.num_clients,
            "compression_ratio": base.compression_ratio,
            "target_accuracy": args.target_acc,
            "backend": base.backend,
            "seed": base.seed,
        },
        "modes": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for r in results:
        print(
            f"{r['mode']:>8}: {r['rounds_per_sec']:6.2f} rounds/s wall, "
            f"virtual {r['virtual_time_total']:8.1f}s total, "
            f"to acc>={args.target_acc:g}: {r['virtual_time_to_target']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
