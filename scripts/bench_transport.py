#!/usr/bin/env python
"""Benchmark the unified transport layer, written to ``BENCH_transport.json``.

Two measurements, tracked as a CI artifact alongside ``bench_modes.py`` /
``bench_hier.py``:

- **pricing-path throughput**: payloads priced per second through the
  exclusive path (the hot loop every protocol round takes) and flows
  resolved per second through the fair water-filling engine;
- **contended vs. exclusive round times**: one seeded config run under
  ``contention="none"`` and ``contention="fair"`` at a given ingress
  capacity — the virtual-clock cost of server-side bandwidth sharing, and
  the wall-clock overhead of simulating it.

Usage::

    PYTHONPATH=src python scripts/bench_transport.py [--rounds N]
        [--num-clients N] [--ingress-mbps M] [--backend serial|thread|process]
        [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.experiments.presets import bench_config
from repro.fl.config import BACKENDS
from repro.network.links import LinkModel, sample_links
from repro.network.transport import MBIT, IngressPipe, Payload, Transport
from repro.simtime import make_simulation


def bench_pricing(n: int = 200_000) -> dict:
    """Exclusive pricing throughput: payloads per second through Eq. 4."""
    transport = Transport()
    links = sample_links(64, LinkModel(), seed=0)
    payloads = [Payload.planned(32e6, 0.1), Payload.dense(32e6), Payload.sparse(10_000)]
    t0 = time.perf_counter()
    acc = 0.0
    for i in range(n):
        acc += transport.uplink_seconds(links[i % 64], payloads[i % 3])
    wall = time.perf_counter() - t0
    return {
        "payloads_priced": n,
        "wall_seconds": round(wall, 4),
        "payloads_per_sec": round(n / wall, 1),
        "checksum": round(acc, 3),
    }


def bench_waterfill(batches: int = 200, flows_per_batch: int = 50) -> dict:
    """Fair-engine throughput: flows resolved per second, batch-epoch style."""
    links = sample_links(flows_per_batch, LinkModel(), seed=1)
    t0 = time.perf_counter()
    resolved = 0
    for b in range(batches):
        pipe = IngressPipe(5.0 * MBIT)
        for i, link in enumerate(links):
            pipe.admit(1e6 + 1e4 * i, link, 0.1 * (i % 7))
        resolved += len(pipe.drain())
    wall = time.perf_counter() - t0
    return {
        "flows_resolved": resolved,
        "wall_seconds": round(wall, 4),
        "flows_per_sec": round(resolved / wall, 1),
    }


def bench_rounds(base, contention: str, ingress_mbps: float | None) -> dict:
    cfg = base.with_(contention=contention, server_ingress_mbps=ingress_mbps)
    t0 = time.perf_counter()
    with make_simulation(cfg) as sim:
        history = sim.run()
    wall = time.perf_counter() - t0
    totals = history.comm_totals()
    return {
        "contention": contention,
        "rounds": len(history),
        "wall_seconds": round(wall, 3),
        "rounds_per_sec": round(len(history) / wall, 3),
        "virtual_time_total": round(history.records[-1].sim_end, 3),
        "final_accuracy": round(history.final_accuracy(), 4),
        "uplink_mb": round(totals["uplink_bytes"] / 1e6, 3),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--num-clients", type=int, default=32)
    parser.add_argument("--ingress-mbps", type=float, default=2.0)
    parser.add_argument("--backend", default="serial", choices=BACKENDS)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_transport.json")
    args = parser.parse_args()

    base = bench_config(
        "cifar10",
        "topk",
        compression_ratio=0.1,
        rounds=args.rounds,
        num_clients=args.num_clients,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
    )
    exclusive = bench_rounds(base, "none", None)
    fair = bench_rounds(base, "fair", args.ingress_mbps)
    payload = {
        "config": {
            "dataset": base.dataset,
            "algorithm": base.algorithm,
            "rounds": base.rounds,
            "num_clients": base.num_clients,
            "compression_ratio": base.compression_ratio,
            "server_ingress_mbps": args.ingress_mbps,
            "backend": base.backend,
            "seed": base.seed,
        },
        "pricing": bench_pricing(),
        "waterfill": bench_waterfill(),
        "round_race": [exclusive, fair],
        "contention_slowdown_virtual": round(
            fair["virtual_time_total"] / exclusive["virtual_time_total"], 3
        ),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"pricing: {payload['pricing']['payloads_per_sec']:,.0f} payloads/s   "
        f"waterfill: {payload['waterfill']['flows_per_sec']:,.0f} flows/s"
    )
    for r in payload["round_race"]:
        print(
            f"contention={r['contention']:>4}: {r['rounds_per_sec']:6.2f} rounds/s wall, "
            f"virtual {r['virtual_time_total']:8.1f}s, uplink {r['uplink_mb']:.2f}MB"
        )
    print(
        f"virtual slowdown under fair sharing at {args.ingress_mbps:g} Mbit/s ingress: "
        f"{payload['contention_slowdown_virtual']}x"
    )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
