#!/usr/bin/env python
"""The consolidated benchmark suite: one artifact, one regression gate.

Runs every benchmark family behind one shared schema — the four standalone
scripts (``bench_modes.py``, ``bench_hier.py``, ``bench_transport.py``,
``bench_fleet.py``) remain usable for deep dives; this suite imports their
measurement functions so the numbers agree — plus an observability section
measuring the null-tracer fast path. Output is ``BENCH_suite.json``::

    {
      "schema": 1,
      "benchmarks": [
        {"name": "modes.sync.rounds_per_sec", "value": 3.1,
         "unit": "rounds/s", "direction": "higher", "gate": true},
        ...
      ],
      "details": { ...full per-family payloads... }
    }

``direction`` says which way is better; entries with ``"gate": true``
participate in the CI regression check::

    PYTHONPATH=src python scripts/bench_suite.py --quick \\
        --check benchmarks/BENCH_suite_baseline.json

which exits 1 if any gated metric regressed more than ``--tolerance``
(default 0.20 = 20%) against the committed baseline. Refresh the baseline
on a quiet machine with ``--update-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(SCRIPTS_DIR))

import bench_fleet  # noqa: E402
import bench_hier  # noqa: E402
import bench_modes  # noqa: E402
import bench_transport  # noqa: E402

from repro.experiments.presets import bench_config  # noqa: E402
from repro.experiments.runner import PROTOCOL_RACE_MODES  # noqa: E402
from repro.obs import NULL_TRACER, Obs, Tracer, MetricsRegistry  # noqa: E402
from repro.simtime import make_simulation  # noqa: E402


def _bench(name: str, value, unit: str, direction: str, *, gate: bool = False) -> dict:
    return {
        "name": name,
        "value": value,
        "unit": unit,
        "direction": direction,
        "gate": gate,
    }


# ------------------------------------------------------------------ sections


def section_modes(quick: bool, seed: int) -> tuple[list[dict], dict]:
    rounds = 6 if quick else 20
    base = bench_config(
        "cifar10", "topk", compression_ratio=0.1, rounds=rounds, seed=seed
    )
    rows = [bench_modes.bench_mode(base, mode, 0.25) for mode in PROTOCOL_RACE_MODES]
    benchmarks = [
        _bench(
            f"modes.{r['mode']}.rounds_per_sec",
            r["rounds_per_sec"],
            "rounds/s",
            "higher",
            gate=(r["mode"] == "sync"),
        )
        for r in rows
    ]
    return benchmarks, {"rounds": rounds, "modes": rows}


def section_hier(quick: bool, seed: int) -> tuple[list[dict], dict]:
    rounds = 4 if quick else 12
    edges = (1, 4) if quick else (1, 4, 16)
    base = bench_config(
        "cifar10",
        "bcrs_opwa",
        compression_ratio=0.1,
        rounds=rounds,
        num_clients=32,
        seed=seed,
        backhaul_bandwidth_mbps=100.0,
        backhaul_latency_s=0.01,
    )
    rows = [bench_hier.bench_edges(base, e, 0.25) for e in edges]
    benchmarks = [
        _bench(
            f"hier.edges{r['num_edges']}.rounds_per_sec",
            r["rounds_per_sec"],
            "rounds/s",
            "higher",
        )
        for r in rows
    ]
    return benchmarks, {"rounds": rounds, "edge_sweep": rows}


def section_transport(quick: bool, seed: int) -> tuple[list[dict], dict]:
    pricing = bench_transport.bench_pricing(50_000 if quick else 200_000)
    waterfill = bench_transport.bench_waterfill(
        batches=50 if quick else 200, flows_per_batch=50
    )
    base = bench_config(
        "cifar10",
        "topk",
        compression_ratio=0.1,
        rounds=4 if quick else 10,
        num_clients=32,
        seed=seed,
    )
    exclusive = bench_transport.bench_rounds(base, "none", None)
    fair = bench_transport.bench_rounds(base, "fair", 2.0)
    benchmarks = [
        _bench(
            "transport.pricing.payloads_per_sec",
            pricing["payloads_per_sec"],
            "payloads/s",
            "higher",
            gate=True,
        ),
        _bench(
            "transport.waterfill.flows_per_sec",
            waterfill["flows_per_sec"],
            "flows/s",
            "higher",
            gate=True,
        ),
        _bench(
            "transport.fair.rounds_per_sec",
            fair["rounds_per_sec"],
            "rounds/s",
            "higher",
        ),
    ]
    details = {
        "pricing": pricing,
        "waterfill": waterfill,
        "round_race": [exclusive, fair],
    }
    return benchmarks, details


def section_fleet(quick: bool, seed: int) -> tuple[list[dict], dict]:
    fleets = (100_000,) if quick else (100_000, 1_000_000)
    rows = [bench_fleet.bench_fleet(n, 64, seed, run_round=False) for n in fleets]
    benchmarks = []
    for r in rows:
        label = f"{r['num_clients'] // 1000}k"
        benchmarks.append(
            _bench(
                f"fleet.construct_{label}.seconds",
                r["construct_seconds"],
                "s",
                "lower",
                gate=(r["num_clients"] == fleets[0]),
            )
        )
        benchmarks.append(
            _bench(f"fleet.construct_{label}.peak_mb", r["peak_mb"], "MB", "lower")
        )
    return benchmarks, {"fleets": rows}


def section_obs(quick: bool, seed: int) -> tuple[list[dict], dict]:
    """The null-tracer contract: disabled instrumentation must be free.

    Two measurements: the micro cost of one disabled ``span()`` round-trip
    (the hot-loop unit every instrumentation site pays when tracing is
    off), and a seeded run traced vs untraced — the end-to-end overhead of
    *live* tracing, with the untraced run exercising exactly the null path
    the determinism contract ships by default.
    """
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with NULL_TRACER.span("x", cat="bench"):
            pass
    null_ns = (time.perf_counter() - t0) / n * 1e9

    rounds = 4 if quick else 10
    cfg = bench_config(
        "cifar10", "topk", compression_ratio=0.1, rounds=rounds, seed=seed
    )
    t0 = time.perf_counter()
    with make_simulation(cfg) as sim:
        sim.run()
    wall_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    with make_simulation(cfg, obs=Obs(Tracer(), MetricsRegistry())) as sim:
        sim.run()
    wall_on = time.perf_counter() - t0
    overhead_pct = (wall_on - wall_off) / wall_off * 100.0

    benchmarks = [
        _bench("obs.null_span.ns_per_call", round(null_ns, 1), "ns", "lower", gate=True),
        _bench(
            "obs.tracing_on.overhead_pct", round(overhead_pct, 2), "%", "lower"
        ),
    ]
    details = {
        "null_span_calls": n,
        "null_span_ns": round(null_ns, 1),
        "rounds": rounds,
        "wall_untraced_s": round(wall_off, 3),
        "wall_traced_s": round(wall_on, 3),
        "tracing_overhead_pct": round(overhead_pct, 2),
    }
    return benchmarks, details


def section_sweep(quick: bool, seed: int) -> tuple[list[dict], dict]:
    """Sweep throughput over a persistent, world-cached process pool.

    A 12-cell same-dataset grid (one world, twelve ``alpha`` values) runs
    twice in one persistent-pool runner: the first pass populates each
    forked worker's :data:`repro.scenarios.sweep.WORLD_CACHE`, the second —
    the measured one — is the steady-state regime of iterative sweep work
    (resumes, refinements, repeated grids over one dataset).
    """
    import multiprocessing as mp
    import os

    from repro.fl.config import ExperimentConfig
    from repro.scenarios.grid import expand_grid
    from repro.scenarios.sweep import SweepRunner

    base = ExperimentConfig(
        dataset="synth-cifar10",
        model="mlp",
        num_train=8_000 if quick else 16_000,
        num_test=1_000 if quick else 2_000,
        num_clients=32,
        participation=0.25,
        rounds=1,
        seed=seed,
        algorithm="topk",
        compression_ratio=0.05,
    )
    specs = expand_grid(base, {"alpha": [round(0.1 + 0.05 * i, 2) for i in range(12)]})
    workers = max(2, min(4, (os.cpu_count() or 2) - 1))
    if "fork" not in mp.get_all_start_methods():  # pragma: no cover (non-POSIX)
        return [], {"skipped": "fork unavailable"}
    with SweepRunner(specs, parallel=workers, executor="process") as runner:
        runner.run()  # warm the workers' world caches
        t0 = time.perf_counter()
        runner.run()
        warm_s = time.perf_counter() - t0
    cells_per_sec = len(specs) / warm_s
    benchmarks = [
        _bench(
            "sweep.cells_per_sec",
            round(cells_per_sec, 2),
            "cells/s",
            "higher",
            gate=True,
        ),
    ]
    details = {
        "cells": len(specs),
        "workers": workers,
        "num_train": base.num_train,
        "warm_sweep_seconds": round(warm_s, 3),
        "cells_per_sec": round(cells_per_sec, 2),
    }
    return benchmarks, details


def section_agg(quick: bool, seed: int) -> tuple[list[dict], dict]:
    """Aggregation throughput through the arena: plain mean and defenses.

    Two measurements. ``agg.sparse_sum_throughput`` is
    :func:`~repro.core.aggregation.weighted_sparse_sum` over a realistic
    round shape (many Top-K updates into one wide vector), arena path —
    retained entries reduced per second; the arena makes the loop
    allocation-free, so this tracks the pure pack+bincount cost.
    ``agg.robust_throughput`` is the order-statistic defenses
    (:func:`~repro.robust.aggregators.robust_aggregate`) at a
    million-coordinate model: the cohort densifies into the arena's row
    matrix and reduces per coordinate, so the unit is dense cells per
    second and the details record how many multiples of the plain mean a
    robust round costs.
    """
    import numpy as np

    from repro.compression.base import SparseUpdate
    from repro.core.aggregation import weighted_sparse_sum
    from repro.core.arena import AggregationArena
    from repro.robust.aggregators import robust_aggregate

    d = 500_000
    n_updates = 32
    k = 5_000
    reps = 20 if quick else 100
    rng = np.random.default_rng(seed)
    updates = []
    for _ in range(n_updates):
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        val = rng.standard_normal(k).astype(np.float32)
        updates.append(SparseUpdate(dense_size=d, indices=idx, values=val))
    weights = rng.random(n_updates) + 0.5
    arena = AggregationArena(d)
    weighted_sparse_sum(updates, weights, arena=arena)  # warm buffers
    t0 = time.perf_counter()
    for _ in range(reps):
        weighted_sparse_sum(updates, weights, arena=arena)
    wall = time.perf_counter() - t0
    entries_per_sec = reps * n_updates * k / wall
    benchmarks = [
        _bench(
            "agg.sparse_sum_throughput",
            round(entries_per_sec / 1e6, 2),
            "Mentries/s",
            "higher",
            gate=True,
        ),
    ]
    details = {
        "dense_size": d,
        "updates": n_updates,
        "k": k,
        "reps": reps,
        "wall_seconds": round(wall, 4),
        "entries_per_sec": round(entries_per_sec),
    }

    # Robust defenses at d=1M: an 8-client cohort of 5%-dense Top-K
    # updates (the (8, 1M) float64 row matrix stays at 64 MB in the
    # arena). Walls cover densify + reduce, i.e. the full extra cost a
    # robust round pays over the fused sparse mean.
    d_r, n_r, k_r = 1_000_000, 8, 50_000
    reps_r = 3 if quick else 10
    r_updates = []
    for _ in range(n_r):
        idx = np.sort(rng.choice(d_r, size=k_r, replace=False)).astype(np.int64)
        val = rng.standard_normal(k_r).astype(np.float32)
        r_updates.append(SparseUpdate(dense_size=d_r, indices=idx, values=val))
    r_weights = np.full(n_r, 1.0 / n_r)
    r_arena = AggregationArena(d_r)
    walls: dict[str, float] = {}
    for rule in ("mean", "trimmed_mean", "median"):
        robust_aggregate(
            r_updates, r_weights, aggregator=rule, trim_beta=0.25, arena=r_arena
        )  # warm rows + accumulator
        t0 = time.perf_counter()
        for _ in range(reps_r):
            robust_aggregate(
                r_updates, r_weights, aggregator=rule, trim_beta=0.25, arena=r_arena
            )
        walls[rule] = time.perf_counter() - t0
    cells_per_sec = {r: reps_r * n_r * d_r / w for r, w in walls.items()}
    benchmarks.append(
        _bench(
            "agg.robust_throughput",
            round(cells_per_sec["median"] / 1e6, 2),
            "Mcells/s",
            "higher",
            gate=True,
        )
    )
    benchmarks.append(
        _bench(
            "agg.robust.trimmed_mean_throughput",
            round(cells_per_sec["trimmed_mean"] / 1e6, 2),
            "Mcells/s",
            "higher",
        )
    )
    details["robust"] = {
        "dense_size": d_r,
        "updates": n_r,
        "k": k_r,
        "reps": reps_r,
        "wall_seconds": {r: round(w, 4) for r, w in walls.items()},
        "cells_per_sec": {r: round(v) for r, v in cells_per_sec.items()},
        "slowdown_vs_mean": {
            r: round(walls[r] / walls["mean"], 2)
            for r in ("trimmed_mean", "median")
        },
    }
    return benchmarks, details


SECTIONS = {
    "modes": section_modes,
    "hier": section_hier,
    "transport": section_transport,
    "fleet": section_fleet,
    "obs": section_obs,
    "sweep": section_sweep,
    "agg": section_agg,
}


# ---------------------------------------------------------------------- gate


def check_regressions(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Gated metrics worse than ``tolerance`` (fraction) vs baseline."""
    base_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    failures = []
    for bench in current["benchmarks"]:
        if not bench.get("gate"):
            continue
        ref = base_by_name.get(bench["name"])
        if ref is None or not isinstance(ref.get("value"), (int, float)):
            continue
        cur, base = bench["value"], ref["value"]
        if not isinstance(cur, (int, float)) or base == 0:
            continue
        if bench["direction"] == "higher":
            regression = (base - cur) / abs(base)
        else:
            regression = (cur - base) / abs(base)
        if regression > tolerance:
            failures.append(
                f"{bench['name']}: {cur:g} {bench['unit']} vs baseline {base:g} "
                f"({regression * 100:.1f}% worse, tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sections", default=",".join(SECTIONS),
        help=f"comma-separated subset of: {', '.join(SECTIONS)}",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized runs (fewer rounds, smaller fleets)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_suite.json")
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare gated metrics against a baseline JSON; exit 1 on "
             "regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression for gated metrics (default 0.20)",
    )
    parser.add_argument(
        "--update-baseline", metavar="PATH", default=None,
        help="also write the result to PATH (the committed baseline)",
    )
    args = parser.parse_args()

    wanted = [s.strip() for s in args.sections.split(",") if s.strip()]
    unknown = [s for s in wanted if s not in SECTIONS]
    if unknown:
        print(f"unknown sections: {unknown}", file=sys.stderr)
        return 2

    benchmarks: list[dict] = []
    details: dict = {}
    for name in wanted:
        t0 = time.perf_counter()
        section_benchmarks, section_details = SECTIONS[name](args.quick, args.seed)
        benchmarks.extend(section_benchmarks)
        details[name] = section_details
        print(f"[{name}] done in {time.perf_counter() - t0:.1f}s")

    payload = {
        "schema": 1,
        "quick": bool(args.quick),
        "seed": args.seed,
        "benchmarks": benchmarks,
        "details": details,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.update_baseline:
        Path(args.update_baseline).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.update_baseline}")

    for b in benchmarks:
        flag = " [gate]" if b.get("gate") else ""
        print(f"  {b['name']:<40} {b['value']:>12} {b['unit']}{flag}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check_regressions(payload, baseline, args.tolerance)
        if failures:
            print("\nREGRESSIONS vs " + args.check, file=sys.stderr)
            for f in failures:
                print("  " + f, file=sys.stderr)
            return 1
        print(f"\nno gated regressions vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
