#!/usr/bin/env python
"""Regenerate docs/SCENARIOS.md from the scenario registry.

The cookbook is *generated*: every section comes from the registered
:class:`~repro.scenarios.ScenarioSpec` objects (description, expected
outcome, overrides, tags), so the document cannot drift from the code. CI
regenerates it and fails on any diff.

Usage:  python scripts/generate_scenarios_md.py [output_path]
"""

from __future__ import annotations

import sys

from repro.scenarios import REGISTRY, config_field_names

HEADER = """\
# Scenario cookbook

One section per scenario registered in `repro.scenarios.registry` — what it
models, the knobs it turns, and the qualitative outcome to expect. Each
composes several of the simulator's orthogonal feature axes (round
protocol, hierarchy, transport contention, compressor, link/compute
heterogeneity, partition) that no single-feature test exercises together.

Run one:

```bash
PYTHONPATH=src python -m repro scenario run <name>          # full budget
PYTHONPATH=src python -m repro scenario run <name> --rounds 4   # smoke
```

Sweep a grid over one (resumable, parallel):

```bash
PYTHONPATH=src python -m repro sweep --scenario <name> \\
    --grid compression_ratio=0.01,0.1 --seeds 2 --parallel 4 --store runs/
```

Render any run or sweep as a self-contained HTML report — add
`--html report.html` to `scenario run` / `sweep`, or rebuild one post-hoc
from the store: `python -m repro report --store runs/ --out report.html`.

> **Generated file — do not edit.** Regenerate with
> `python scripts/generate_scenarios_md.py docs/SCENARIOS.md`
> (CI checks for drift).

## Index

| scenario | mode | algorithm | tags |
|---|---|---|---|
"""


def render() -> str:
    parts = [HEADER]
    field_order = {name: i for i, name in enumerate(config_field_names())}
    for spec in REGISTRY:
        cfg = spec.to_config()
        parts.append(
            f"| [`{spec.name}`](#{spec.name}) | {cfg.mode} | {cfg.algorithm} "
            f"| {', '.join(spec.tags)} |\n"
        )
    for spec in REGISTRY:
        cfg = spec.to_config()
        lines = [f"\n## {spec.name}\n"]
        lines.append(f"*tags: {', '.join(spec.tags)} · spec hash `{spec.spec_hash()}`*\n")
        lines.append(f"\n{spec.description}\n")
        lines.append(f"\n**Expected outcome.** {spec.expected}\n")
        lines.append("\n**Knobs (vs `ExperimentConfig` defaults):**\n\n")
        lines.append("| field | value |\n|---|---|\n")
        for name in sorted(spec.overrides, key=field_order.__getitem__):
            lines.append(f"| `{name}` | `{spec.overrides[name]!r}` |\n")
        lines.append(
            f"\n```bash\nPYTHONPATH=src python -m repro scenario run {spec.name}\n```\n"
        )
        parts.append("".join(lines))
    return "".join(parts)


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "docs/SCENARIOS.md"
    doc = render()
    with open(out_path, "w") as f:
        f.write(doc)
    print(f"wrote {out_path} ({len(REGISTRY)} scenarios)")


if __name__ == "__main__":
    main()
