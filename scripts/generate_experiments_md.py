#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs the same configurations as the benchmark suite (bench scale; set
REPRO_BENCH_SCALE to run bigger) and writes the comparison document. Takes a
few minutes on CPU.

Usage:  python scripts/generate_experiments_md.py [output_path]
"""

from __future__ import annotations

import sys

from repro.compression.base import SparseUpdate
from repro.core.bcrs import schedule_ratios
from repro.core.overlap import overlap_distribution
from repro.data.datasets import make_dataset
from repro.data.partition import dirichlet_partition
from repro.data.stats import mean_emd_to_global, mean_label_entropy
from repro.experiments import bench_config, bench_scale, run_comparison, sweep
from repro.experiments.paper_reference import (
    FIG4_SINGLETON_FRACTIONS,
    FIG6_BREAKDOWN,
    TABLE2,
    TABLE3,
    TABLE4,
)
from repro.fl import Simulation
from repro.network.cost import LinkSpec, model_bits, sparse_uplink_time, uplink_time

ALGS = ["fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"]
SETTINGS = [(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)]


def md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    out += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(out)


def section_table2() -> str:
    parts = ["## Table 2 — main accuracies\n"]
    for dataset in ("cifar10", "svhn", "cifar100"):
        rows = []
        for beta, cr in SETTINGS:
            base = bench_config(dataset, "fedavg", beta=beta)
            res = run_comparison(base, ALGS, compression_ratio=cr)
            for alg in ALGS:
                rows.append([
                    f"β={beta}, CR={cr}", alg,
                    f"{res[alg].final_accuracy():.4f}",
                    f"{TABLE2[dataset][(beta, cr)][alg]:.4f}",
                ])
        parts.append(f"### {dataset}\n\n" + md_table(["setting", "algorithm", "measured", "paper"], rows) + "\n")
    return "\n".join(parts)


def section_table3() -> str:
    rows = []
    for cr in (0.1, 0.01):
        base = bench_config("cifar10", "fedavg", beta=0.1, rounds=60)
        res = run_comparison(base, ["fedavg", "topk", "eftopk", "bcrs"], compression_ratio=cr)
        for alg in ("fedavg", "topk", "eftopk", "bcrs"):
            t = res[alg].time_to_accuracy(0.40)
            paper = TABLE3[alg][cr]
            rows.append([
                f"CR={cr}", alg,
                "--" if t["actual"] is None else f"{t['actual']:.2f}",
                f"{paper[0]:.2f}" if paper[0] is not None else "--",
            ])
    return "## Table 3 — comm time (s) to 40% accuracy (CIFAR-10, β=0.1)\n\n" + md_table(
        ["setting", "algorithm", "measured actual", "paper actual"], rows
    ) + "\n"


def section_table4() -> str:
    rows = []
    for beta, cr in SETTINGS:
        base = bench_config("cifar10", "bcrs_opwa", beta=beta, compression_ratio=cr)
        res = sweep(base, "gamma", [3.0, 5.0, 7.0])
        for g in (3.0, 5.0, 7.0):
            rows.append([
                f"β={beta}, CR={cr}", f"γ={int(g)}",
                f"{res[g].final_accuracy():.4f}",
                f"{TABLE4[(beta, cr)][int(g)]:.4f}",
            ])
    return "## Table 4 — OPWA γ sweep (CIFAR-10)\n\n" + md_table(
        ["setting", "enlarge rate", "measured", "paper"], rows
    ) + "\n"


def section_fig1_2() -> str:
    links = [LinkSpec(2.0e6, 0.05), LinkSpec(1.0e6, 0.08), LinkSpec(0.5e6, 0.12)]
    volume = model_bits(200_000)
    cr = 0.05
    dense = [uplink_time(l, volume) for l in links]
    uniform = [sparse_uplink_time(l, volume, cr) for l in links]
    sched = schedule_ratios(links, volume, cr)
    rows = [
        [f"C{i+1}", f"{dense[i]:.2f}", f"{uniform[i]:.2f}",
         f"{sched.scheduled_times[i]:.2f}", f"{sched.ratios[i]:.3f}"]
        for i in range(3)
    ]
    return (
        "## Fig. 1/2 — timelines and adaptive ratios (3 clients, B1>B2>B3)\n\n"
        + md_table(["client", "dense (s)", "uniform CR (s)", "BCRS (s)", "BCRS ratio"], rows)
        + "\n\nShape: BCRS equalizes finish times at the uniform-CR straggler's "
        "time; faster links get monotonically larger ratios (paper Fig. 1/2).\n"
    )


def section_fig4() -> str:
    rows = []
    for beta in (0.1, 0.5):
        for cr in (0.01, 0.1):
            cfg = bench_config("cifar10", "topk", beta=beta, compression_ratio=cr, rounds=3)
            sim = Simulation(cfg)
            sim.run()
            updates = [u for u in sim.last_round_updates if isinstance(u, SparseUpdate)]
            dist = overlap_distribution(updates)
            rows.append([
                f"β={beta}, CR={cr}",
                f"{dist.singleton_fraction():.2%}",
                f"{FIG4_SINGLETON_FRACTIONS[(beta, cr)]:.2%}",
            ])
    return "## Fig. 4 — singleton fraction of retained parameters\n\n" + md_table(
        ["setting", "measured", "paper"], rows
    ) + "\n"


def section_fig5() -> str:
    ds = make_dataset("synth-cifar10", 5000, seed=0)
    rows = []
    for beta in (0.5, 0.1):
        p = dirichlet_partition(ds.y, 10, beta, seed=1)
        rows.append([
            f"β={beta}", f"{mean_emd_to_global(p):.3f}", f"{mean_label_entropy(p):.3f}",
            str(int((p.counts_matrix() == 0).sum())),
        ])
    return (
        "## Fig. 5 — Dirichlet partition heterogeneity\n\n"
        + md_table(["setting", "mean EMD to global", "mean label entropy (nats)", "empty class×client cells"], rows)
        + "\n\nShape: β=0.1 is markedly more skewed than β=0.5 (paper Fig. 5 heatmaps).\n"
    )


def section_fig6() -> str:
    rows = []
    for cr in (0.01, 0.1):
        cfg = bench_config("cifar10", "bcrs", compression_ratio=cr, beta=0.1,
                           rounds=10, volume_override_bits=4.7e7)
        sim = Simulation(cfg)
        sim.run()
        b = sim.history.mean_breakdown()
        paper = FIG6_BREAKDOWN[cr]
        rows.append([
            f"CR={cr}",
            f"{b['compress_s']:.3f} / {paper[0]:.2f}",
            f"{b['train_s']:.3f} / {paper[1]:.2f}",
            f"{b['comm_uncompressed_s']:.2f} / {paper[2]:.2f}",
            f"{b['comm_actual_s']:.2f} / {paper[3]:.2f}",
        ])
    return (
        "## Fig. 6 — per-round time breakdown (measured / paper, seconds)\n\n"
        + md_table(["setting", "compress", "train", "uncompressed comm", "BCRS comm"], rows)
        + "\n\nTraining wall time differs (CPU MLP vs RTX-4090 ResNet-18); the "
        "communication columns use the paper-scale ~47 Mbit model volume and match closely.\n"
    )


def section_curve_figs() -> str:
    parts = ["## Figs. 7–10, 13–15 — convergence curves\n"]
    for name, dataset in [("Fig. 7/13 (CIFAR-10)", "cifar10"), ("Fig. 8/15 (SVHN)", "svhn"), ("Fig. 9/14 (CIFAR-100)", "cifar100")]:
        rows = []
        for beta, cr in SETTINGS:
            base = bench_config(dataset, "fedavg", beta=beta)
            res = run_comparison(base, ALGS, compression_ratio=cr)
            acc = {a: res[a].final_accuracy() for a in ALGS}
            order = " > ".join(sorted(acc, key=acc.get, reverse=True))
            rows.append([f"β={beta}, CR={cr}"] + [f"{acc[a]:.3f}" for a in ALGS] + [order])
        parts.append(f"### {name}\n\n" + md_table(["setting"] + ALGS + ["measured ordering"], rows) + "\n")
    # Fig. 10: communication-time totals.
    rows = []
    for beta, cr in SETTINGS:
        base = bench_config("cifar10", "fedavg", beta=beta, rounds=50)
        res = run_comparison(base, ["fedavg", "topk", "bcrs"], compression_ratio=cr)
        rows.append([
            f"β={beta}, CR={cr}",
            f"{res['fedavg'].time.actual_total:.0f}s",
            f"{res['topk'].time.actual_total:.0f}s",
            f"{res['bcrs'].time.actual_total:.0f}s",
        ])
    parts.append("### Fig. 10 — accumulated actual comm time over the run\n\n"
                 + md_table(["setting", "fedavg", "topk", "bcrs"], rows) + "\n")
    return "\n".join(parts)


def section_fig11_12() -> str:
    parts = []
    rows = []
    for beta in (0.5, 0.1):
        base = bench_config("cifar10", "bcrs_opwa", beta=beta, compression_ratio=0.1)
        res = sweep(base, "gamma", [3.0, 5.0, 7.0, 8.0])
        best = max(res, key=lambda g: res[g].final_accuracy())
        rows.append([f"β={beta}", f"γ={int(best)}",
                     f"{res[best].final_accuracy():.4f}"])
    parts.append("## Fig. 11 — best γ at N=10 (CR=0.1)\n\n"
                 + md_table(["setting", "best γ in sweep", "accuracy"], rows) + "\n")
    rows = []
    for n in (16, 20):
        base = bench_config("cifar10", "bcrs_opwa", beta=0.1, compression_ratio=0.01,
                            num_clients=n, num_train=1600)
        res = sweep(base, "gamma", [2.0, 5.0, 8.0, 11.0, 14.0])
        best = max(res, key=lambda g: res[g].final_accuracy())
        rows.append([f"N={n} (|S_t|={base.clients_per_round})", f"γ={int(best)}",
                     f"{res[best].final_accuracy():.4f}"])
    parts.append("## Fig. 12 — best γ grows with federation size (CR=0.01)\n\n"
                 + md_table(["setting", "best γ in sweep", "accuracy"], rows)
                 + "\n\nPaper: the optimal γ is roughly proportional to the "
                 "selected-client count.\n")
    return "\n".join(parts)


HEADER = """# EXPERIMENTS — paper vs measured

Every artifact of the paper's evaluation, regenerated by this repo at CPU
scale and compared against the published numbers. Absolute values differ by
construction — the paper trains ResNet-18 on real CIFAR/SVHN on RTX 4090s,
this repo trains a small numpy MLP on synthetic stand-ins (DESIGN.md §2) —
so the comparison tracks the *shape*: who wins, by roughly what factor,
where the crossovers fall. Regenerate with:

```
python scripts/generate_experiments_md.py          # this document
pytest benchmarks/ --benchmark-only                # the asserted version
```

Bench scale: REPRO_BENCH_SCALE={scale} (rounds={rounds}, train samples={ntrain}).

## Summary of shape agreement

- **TopK/EFTOPK degrade vs FedAvg under compression, severely at CR=0.01** — reproduced in every dataset cell.
- **BCRS improves on uniform TopK** — reproduced (CIFAR-10/SVHN all cells; CIFAR-100 within noise, incl. the β=0.1/CR=0.1 cell where the *paper itself* reports BCRS below TopK).
- **BCRS+OPWA recovers most of the FedAvg gap and can exceed FedAvg at CR=0.1** — reproduced; our maximum improvement over FedAvg (~5–7 pts) echoes the paper's up-to-13% claim directionally.
- **BCRS reaches target accuracy with far less communication than TopK (paper: 2.02–3.37×) and FedAvg (paper: ~200×)** — reproduced; exact factors depend on sampled links.
- **~87% singleton retention at CR=0.01, ~59% at CR=0.1 (Fig. 4)** — reproduced within model-size effects (smaller model ⇒ slightly lower singleton share).
- **Optimal γ grows with |S_t| (Fig. 12)** — reproduced.
- **One deviation**: our EFTOPK is clearly stronger than plain TOPK, while the paper measures them nearly equal. Error feedback provably recovers dropped mass; with the paper's ResNet the residual may be dominated by staleness. Recorded as a known substrate difference.

"""


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    cfg = bench_config("cifar10", "fedavg")
    doc = [HEADER.format(scale=bench_scale(), rounds=cfg.rounds, ntrain=cfg.num_train)]
    for fn in (
        section_table2,
        section_table3,
        section_table4,
        section_fig1_2,
        section_fig4,
        section_fig5,
        section_fig6,
        section_curve_figs,
        section_fig11_12,
    ):
        print(f"... {fn.__name__}", flush=True)
        doc.append(fn())
    with open(out_path, "w") as f:
        f.write("\n".join(doc))
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
