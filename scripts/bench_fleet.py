#!/usr/bin/env python
"""Benchmark fleet-size scaling of the population engine, written to
``BENCH_fleet.json``.

Sweeps the fleet from 10K to 1M clients at a *fixed* cohort and measures,
per fleet size,

- ``construct_seconds``: wall-clock to build the full ``Simulation``
  (population columns, sampler, model — no client objects), and
- ``peak_mb`` / ``round_peak_mb``: traced allocation peaks (tracemalloc,
  which sees numpy buffers) for construction alone and for construction
  plus one seeded round,

so the struct-of-arrays promise — construction ~O(columns) milliseconds,
memory O(cohort) not O(fleet) — is tracked by an artifact, not anecdotes.
Usage::

    PYTHONPATH=src python scripts/bench_fleet.py [--fleets 10000,100000,1000000]
        [--cohort 64] [--round] [--out PATH]

``--round`` additionally runs one training round per fleet size (the
default measures construction only, which is what scales with the fleet).
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from pathlib import Path

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation

DEFAULT_FLEETS = (10_000, 100_000, 1_000_000)


def fleet_config(num_clients: int, cohort: int, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="synth-cifar10",
        model="mlp",
        num_train=4096,
        num_test=256,
        num_clients=num_clients,
        participation=cohort / num_clients,
        virtual_shards=True,
        virtual_shard_min=16,
        virtual_shard_max=64,
        hydration_cache=cohort,
        rounds=1,
        batch_size=32,
        eval_every=10,
        algorithm="bcrs_opwa",
        compression_ratio=0.1,
        seed=seed,
    )


def bench_fleet(num_clients: int, cohort: int, seed: int, run_round: bool) -> dict:
    cfg = fleet_config(num_clients, cohort, seed)

    tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    sim = Simulation(cfg)
    construct = time.perf_counter() - t0
    _, construct_peak = tracemalloc.get_traced_memory()

    row = {
        "num_clients": num_clients,
        "cohort": cfg.clients_per_round,
        "construct_seconds": round(construct, 4),
        "peak_mb": round(construct_peak / 1e6, 2),
        "population_columns_mb": round(sim.population.memory_bytes() / 1e6, 2),
        "hydrations_after_construct": sim.clients.hydrations,
    }
    if run_round:
        t0 = time.perf_counter()
        sim.run(1)
        row["round_seconds"] = round(time.perf_counter() - t0, 3)
        _, round_peak = tracemalloc.get_traced_memory()
        row["round_peak_mb"] = round(round_peak / 1e6, 2)
        row["hydrations_after_round"] = sim.clients.hydrations
    tracemalloc.stop()
    sim.close()
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fleets", default=",".join(str(n) for n in DEFAULT_FLEETS),
        help="comma-separated fleet sizes to sweep",
    )
    parser.add_argument("--cohort", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--round", action="store_true",
        help="also run (and measure) one seeded round per fleet size",
    )
    parser.add_argument("--out", default="BENCH_fleet.json")
    args = parser.parse_args()

    fleets = [int(n) for n in args.fleets.split(",") if n]
    results = [bench_fleet(n, args.cohort, args.seed, args.round) for n in fleets]
    payload = {
        "config": {
            "cohort": args.cohort,
            "virtual_shards": True,
            "seed": args.seed,
            "round_measured": bool(args.round),
        },
        "fleets": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for r in results:
        extra = (
            f", round {r['round_seconds']:6.2f}s peak {r['round_peak_mb']:7.1f} MB"
            if args.round
            else ""
        )
        print(
            f"N={r['num_clients']:>9,}: construct {r['construct_seconds']:7.3f}s, "
            f"peak {r['peak_mb']:7.1f} MB (columns {r['population_columns_mb']:.1f} MB)"
            f"{extra}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
